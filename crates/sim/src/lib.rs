//! # gc-sim
//!
//! The simulation substrate: drives any [`GcPolicy`](gc_policies::GcPolicy)
//! over a [`Trace`](gc_types::Trace) and reports what happened.
//!
//! * [`engine`] — the single-pass simulator, with per-access attribution of
//!   hits to **temporal** vs **spatial** locality exactly as defined in §2
//!   of the paper (the first hit to a co-loaded item is spatial; every
//!   later hit is temporal).
//! * [`stats`] — the [`SimStats`](stats::SimStats) accumulator.
//! * [`probe`] — [`ProbeAdapter`](probe::ProbeAdapter), which lets the
//!   adaptive adversaries of `gc-trace` drive any policy.
//! * [`pool`] — the shared worker pool: crossbeam scoped threads with an
//!   atomic work cursor (Rayon-style dynamic work distribution without
//!   the dependency), results in job order.
//! * [`sweep`] — a parallel parameter-sweep harness built on the pool,
//!   with a checked mode ([`run_sweep_checked`](sweep::run_sweep_checked))
//!   that isolates panicking cells and checkpoints progress.
//! * [`checkpoint`] — JSON checkpoint files for interruptible sweeps and
//!   MRC bundles, plus the stable config fingerprints that guard resume.
//! * [`compare`] — run a roster of policies over one trace and tabulate.
//! * [`mrc`] — Mattson-stack miss-ratio curves (item- and block-granular),
//!   the IBLP split grid, and the parallel [`mrc_bundle`](mrc::mrc_bundle).
//! * [`shards`] — SHARDS-style spatially-hashed reuse-distance sampling:
//!   approximate MRCs in near-linear time at rates down to 0.1 %, with a
//!   fixed-size adaptive mode.
//! * [`hierarchy`] — two-level (L1 → GC L2) composition, the Figure 1
//!   setting with per-level attribution and AMAT.
//! * [`rowbuffer`] — a DRAM row-buffer cost model that re-prices loads in
//!   activate/column cycles, validating the unit-block-cost abstraction.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod compare;
pub mod engine;
pub mod hierarchy;
pub mod mrc;
pub mod pool;
pub mod probe;
pub mod rowbuffer;
pub mod shards;
pub mod stats;
pub mod sweep;

pub use checkpoint::{
    MrcCheckpoint, MrcCurveRecord, StableHasher, SweepCellOutcome, SweepCellRecord, SweepCheckpoint,
};
pub use compare::{compare_policies, ComparisonRow};
pub use engine::{
    simulate, simulate_compiled, simulate_compiled_with_warmup, simulate_with_warmup, SpatialSet,
};
pub use hierarchy::{simulate_hierarchy, HierarchyStats};
pub use mrc::{
    block_mrc, block_mrc_compiled, iblp_split_grid, item_mrc, item_mrc_compiled, mrc_bundle,
    mrc_bundle_checked, mrc_bundle_compiled, mrc_config_hash, split_grid_from_curves,
    MissRatioCurve, MrcBundle, MrcMode, MrcRunConfig, SplitCell,
};
pub use pool::{
    resolve_threads, run_indexed, run_indexed_checked, run_indexed_opts, CancelToken, CheckedRun,
    JobError, PoolOptions, Straggler,
};
pub use probe::ProbeAdapter;
pub use rowbuffer::{simulate_with_row_buffer, RowBufferCosts, RowBufferStats};
pub use shards::{
    sampled_block_mrc, sampled_block_mrc_compiled, sampled_block_mrc_compiled_with_stats,
    sampled_block_mrc_with_stats, sampled_item_mrc, sampled_item_mrc_compiled,
    sampled_item_mrc_compiled_with_stats, sampled_item_mrc_with_stats, SampleStats, SamplerConfig,
};
pub use stats::SimStats;
pub use sweep::{
    run_cell, run_cell_compiled, run_sweep, run_sweep_checked, run_sweep_compiled,
    sweep_config_hash, to_csv_checked, OnError, SweepJob, SweepOutcome, SweepResult,
    SweepRunConfig,
};
