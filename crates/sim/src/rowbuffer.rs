//! A DRAM row-buffer cost model — validating the paper's unit-block-cost
//! assumption against the hardware behavior that motivates it.
//!
//! §2 justifies charging one unit per block subset: *"there is typically a
//! small memory buffer used to handle data as it is being read or written.
//! The cost of moving data from the subsequent level into this buffer is
//! typically large relative to the cost of operating on the buffer
//! itself."* In DRAM terms: a miss that needs a new row pays an
//! activate+precharge (`row_miss_cost`); once the row is open, streaming
//! further items out of it costs only column accesses (`open_row_cost`).
//!
//! [`RowBufferMeter`] replays an [`AccessResult`] stream under that cost
//! model (open-page policy: the last-used row stays open), so any policy's
//! simulator run can be re-priced in "DRAM cycles" instead of unit block
//! costs. The `rowbuffer_validation` experiment shows the unit-cost model
//! preserves the policy ranking — the substitution argument for the whole
//! reproduction, measured.

use gc_policies::GcPolicy;
use gc_types::{AccessResult, AccessScratch, BlockMap, ItemId, Trace};

/// Cost parameters for the row-buffer model (defaults roughly mirror
/// DDR4-class timing ratios: row activate ≈ 10× a column access, cache
/// hits ≈ free at this granularity).
#[derive(Clone, Copy, Debug)]
pub struct RowBufferCosts {
    /// Cost of a load whose block is *not* in the open row
    /// (precharge + activate + first column access).
    pub row_miss_cost: u64,
    /// Cost of a load whose block is already open (column access only).
    pub open_row_cost: u64,
    /// Per-item transfer cost on top of the row charge (burst beats).
    pub per_item_cost: u64,
}

impl Default for RowBufferCosts {
    fn default() -> Self {
        RowBufferCosts {
            row_miss_cost: 20,
            open_row_cost: 2,
            per_item_cost: 1,
        }
    }
}

/// Accumulated row-buffer statistics for one simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowBufferStats {
    /// Loads that found their row open ("row-buffer hits").
    pub row_hits: u64,
    /// Loads that had to open a new row.
    pub row_misses: u64,
    /// Total items transferred.
    pub items_transferred: u64,
    /// Total cost in model cycles.
    pub total_cost: u64,
}

impl RowBufferStats {
    /// Row-buffer hit rate among loads.
    pub fn row_hit_rate(&self) -> f64 {
        let loads = self.row_hits + self.row_misses;
        if loads == 0 {
            0.0
        } else {
            self.row_hits as f64 / loads as f64
        }
    }
}

/// Replays a policy's load stream under the row-buffer cost model.
#[derive(Clone, Debug)]
pub struct RowBufferMeter {
    costs: RowBufferCosts,
    map: BlockMap,
    open_row: Option<u64>,
    stats: RowBufferStats,
}

impl RowBufferMeter {
    /// A meter with the given costs over the given block (row) partition.
    pub fn new(map: BlockMap, costs: RowBufferCosts) -> Self {
        RowBufferMeter {
            costs,
            map,
            open_row: None,
            stats: RowBufferStats::default(),
        }
    }

    /// Account one access outcome. Hits are free (served from the cache);
    /// a miss charges the open-row or row-miss cost plus per-item burst
    /// transfer, and leaves the block's row open.
    pub fn record(&mut self, result: &AccessResult) {
        let AccessResult::Miss { loaded, .. } = result else {
            return;
        };
        self.record_miss(loaded);
    }

    /// Account one miss given its loaded-items slice — the zero-allocation
    /// entry point for scratch-based simulation loops. `loaded` must be
    /// non-empty (a miss always loads at least the request).
    pub fn record_miss(&mut self, loaded: &[ItemId]) {
        let row = self.map.block_of(loaded[0]).0;
        if self.open_row == Some(row) {
            self.stats.row_hits += 1;
            self.stats.total_cost += self.costs.open_row_cost;
        } else {
            self.stats.row_misses += 1;
            self.stats.total_cost += self.costs.row_miss_cost;
            self.open_row = Some(row);
        }
        self.stats.items_transferred += loaded.len() as u64;
        self.stats.total_cost += self.costs.per_item_cost * loaded.len() as u64;
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &RowBufferStats {
        &self.stats
    }
}

/// Run `policy` over `trace`, pricing its loads with the row-buffer model.
/// Returns `(unit_cost_misses, row_buffer_stats)` so the two cost models
/// can be compared directly.
pub fn simulate_with_row_buffer<P: GcPolicy + ?Sized>(
    policy: &mut P,
    trace: &Trace,
    map: &BlockMap,
    costs: RowBufferCosts,
) -> (u64, RowBufferStats) {
    let mut meter = RowBufferMeter::new(map.clone(), costs);
    let mut misses = 0u64;
    let mut scratch = AccessScratch::new();
    for item in trace.iter() {
        if policy.access_into(item, &mut scratch).is_miss() {
            misses += 1;
            meter.record_miss(&scratch.loaded);
        }
    }
    (misses, meter.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, Iblp, ItemLru, PolicyKind};

    #[test]
    fn hits_cost_nothing() {
        let map = BlockMap::strided(4);
        let mut cache = BlockLru::new(16, map.clone());
        let trace = Trace::from_ids([0, 1, 2, 3, 0, 1]);
        let (misses, stats) =
            simulate_with_row_buffer(&mut cache, &trace, &map, RowBufferCosts::default());
        assert_eq!(misses, 1);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.items_transferred, 4);
        // 20 (row) + 4 items × 1.
        assert_eq!(stats.total_cost, 24);
    }

    #[test]
    fn consecutive_same_block_loads_hit_the_open_row() {
        // An item cache streaming a block pays the row once, then open-row
        // costs — the hardware effect the unit-cost model abstracts.
        let map = BlockMap::strided(8);
        let mut lru = ItemLru::new(4);
        let trace = Trace::from_ids(0..8u64);
        let (misses, stats) =
            simulate_with_row_buffer(&mut lru, &trace, &map, RowBufferCosts::default());
        assert_eq!(misses, 8);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 7);
        assert!((stats.row_hit_rate() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn unit_cost_model_preserves_policy_ranking() {
        // The substitution argument: on a mixed workload, ordering by unit
        // miss cost and ordering by row-buffer cycles agree for the main
        // contenders.
        let b = 16usize;
        let map = BlockMap::strided(b);
        let mut trace = Trace::new();
        for round in 0..400u64 {
            for hot in 0..48u64 {
                trace.push(gc_types::ItemId(hot * b as u64));
            }
            let fresh = 10_000 + round;
            for off in 0..b as u64 {
                trace.push(gc_types::ItemId(fresh * b as u64 + off));
            }
        }
        let mut results = Vec::new();
        for kind in [
            PolicyKind::ItemLru,
            PolicyKind::BlockLru,
            PolicyKind::IblpBalanced,
        ] {
            let mut policy = kind.build(256, &map);
            let (misses, stats) =
                simulate_with_row_buffer(&mut policy, &trace, &map, RowBufferCosts::default());
            results.push((kind.label(), misses, stats.total_cost));
        }
        let mut by_misses = results.clone();
        by_misses.sort_by_key(|r| r.1);
        let mut by_cycles = results;
        by_cycles.sort_by_key(|r| r.2);
        let order_m: Vec<&str> = by_misses.iter().map(|r| r.0.as_str()).collect();
        let order_c: Vec<&str> = by_cycles.iter().map(|r| r.0.as_str()).collect();
        assert_eq!(order_m, order_c, "cost models disagree on the ranking");
    }

    #[test]
    fn iblp_whole_block_loads_amortize_row_opens() {
        // IBLP's one load per block transfers B items for one row charge;
        // an item cache pays the row open once but B column accesses.
        let map = BlockMap::strided(8);
        let trace = Trace::from_ids(0..8000u64);
        let mut iblp = Iblp::new(8, 8, map.clone());
        let (_, s_iblp) =
            simulate_with_row_buffer(&mut iblp, &trace, &map, RowBufferCosts::default());
        let mut lru = ItemLru::new(16);
        let (_, s_lru) =
            simulate_with_row_buffer(&mut lru, &trace, &map, RowBufferCosts::default());
        assert_eq!(s_iblp.items_transferred, s_lru.items_transferred);
        assert!(
            s_iblp.total_cost < s_lru.total_cost,
            "batched transfer should be cheaper: {} vs {}",
            s_iblp.total_cost,
            s_lru.total_cost
        );
    }
}
