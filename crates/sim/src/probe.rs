//! Adapter letting the adaptive adversaries of `gc-trace` drive a policy.

use gc_policies::GcPolicy;
use gc_trace::OnlineCacheProbe;
use gc_types::{AccessScratch, ItemId};

/// Wraps any [`GcPolicy`] as an [`OnlineCacheProbe`] and counts the misses
/// it suffers, so adversary reports can be cross-checked against the
/// policy's own accounting. Accesses go through the zero-allocation
/// [`GcPolicy::access_into`] path with an adapter-owned scratch.
#[derive(Debug)]
pub struct ProbeAdapter<P> {
    policy: P,
    scratch: AccessScratch,
    misses: u64,
    accesses: u64,
}

impl<P: GcPolicy> ProbeAdapter<P> {
    /// Wrap a policy.
    pub fn new(policy: P) -> Self {
        ProbeAdapter {
            policy,
            scratch: AccessScratch::new(),
            misses: 0,
            accesses: 0,
        }
    }

    /// Misses observed so far (including any warm-up the adversary ran).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses delivered so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Unwrap.
    pub fn into_inner(self) -> P {
        self.policy
    }
}

impl<P: GcPolicy> OnlineCacheProbe for ProbeAdapter<P> {
    fn contains(&self, item: ItemId) -> bool {
        self.policy.contains(item)
    }

    fn access(&mut self, item: ItemId) {
        self.accesses += 1;
        if self.policy.access_into(item, &mut self.scratch).is_miss() {
            self.misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::ItemLru;
    use gc_trace::adversary;

    #[test]
    fn adapter_counts_match_policy_behavior() {
        let mut probe = ProbeAdapter::new(ItemLru::new(4));
        for id in [1u64, 2, 1, 3] {
            probe.access(ItemId(id));
        }
        assert_eq!(probe.accesses(), 4);
        assert_eq!(probe.misses(), 3);
        assert!(probe.contains(ItemId(1)));
        assert!(!probe.contains(ItemId(9)));
    }

    #[test]
    fn sleator_tarjan_against_real_lru() {
        // The classic adversary against the real ItemLru: every post-warmup
        // access must miss, certifying the k/(k−h+1) ratio.
        let (k, h, rounds) = (32, 16, 12);
        let mut probe = ProbeAdapter::new(ItemLru::new(k));
        let rep = adversary::sleator_tarjan(&mut probe, k, h, rounds);
        assert_eq!(rep.online_misses, (rounds * k) as u64);
        let expected = k as f64 / (k - h + 1) as f64;
        assert!((rep.competitive_ratio() - expected).abs() < 1e-9);
        // Adapter agrees: warmup misses (k) + round misses.
        assert_eq!(probe.misses(), (k + rounds * k) as u64);
    }

    #[test]
    fn thm2_against_real_lru_shows_b_factor() {
        // Theorem 2 executed against a real item LRU: the certified ratio
        // must approach B(k−B+1)/(k−h+1) — far beyond Sleator–Tarjan.
        let (k, h, b, rounds) = (128, 32, 16, 20);
        let mut probe = ProbeAdapter::new(ItemLru::new(k));
        let rep = adversary::item_cache(&mut probe, k, h, b, rounds);
        let per_round_online = (k - h + 1) + (h - b);
        let per_round_opt = (k - h + 1).div_ceil(b);
        let expected = per_round_online as f64 / per_round_opt as f64;
        assert!((rep.competitive_ratio() - expected).abs() < 1e-9);
        let st = k as f64 / (k - h + 1) as f64;
        assert!(rep.competitive_ratio() > 10.0 * st);
    }
}
