//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulation run.
///
/// The cost model follows Definition 1: every miss costs one unit no matter
/// how many items of the block it loads, so `misses` *is* the total cost.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Requests served (after any warm-up exclusion).
    pub accesses: u64,
    /// Requests that missed — equivalently, unit-cost loads performed.
    pub misses: u64,
    /// Hits to items resident because of their *own* earlier request.
    pub temporal_hits: u64,
    /// First hits to items resident only because a sibling's miss
    /// co-loaded them (§2's definition of a spatial-locality hit).
    pub spatial_hits: u64,
    /// Total items brought in across all loads (≥ `misses`).
    pub items_loaded: u64,
    /// Total items evicted.
    pub items_evicted: u64,
    /// Largest observed occupancy, in lines.
    pub peak_len: usize,
}

impl SimStats {
    /// All hits (temporal + spatial).
    pub fn hits(&self) -> u64 {
        self.temporal_hits + self.spatial_hits
    }

    /// Misses per access — the fault rate of §7.
    pub fn fault_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hits per access.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses as f64
        }
    }

    /// Fraction of hits attributable to spatial locality.
    pub fn spatial_fraction(&self) -> f64 {
        let hits = self.hits();
        if hits == 0 {
            0.0
        } else {
            self.spatial_hits as f64 / hits as f64
        }
    }

    /// Average items brought in per unit-cost load.
    pub fn load_width(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.items_loaded as f64 / self.misses as f64
        }
    }

    /// Merge another run's counters into this one (for sharded traces).
    pub fn merge(&mut self, other: &SimStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.temporal_hits += other.temporal_hits;
        self.spatial_hits += other.spatial_hits;
        self.items_loaded += other.items_loaded;
        self.items_evicted += other.items_evicted;
        self.peak_len = self.peak_len.max(other.peak_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            accesses: 100,
            misses: 25,
            temporal_hits: 60,
            spatial_hits: 15,
            items_loaded: 100,
            items_evicted: 80,
            peak_len: 64,
        }
    }

    #[test]
    fn rates() {
        let s = sample();
        assert_eq!(s.hits(), 75);
        assert!((s.fault_rate() - 0.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.spatial_fraction() - 0.2).abs() < 1e-12);
        assert!((s.load_width() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zero_rates() {
        let s = SimStats::default();
        assert_eq!(s.fault_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.spatial_fraction(), 0.0);
        assert_eq!(s.load_width(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.accesses, 200);
        assert_eq!(a.misses, 50);
        assert_eq!(a.peak_len, 64);
    }
}
