//! SHARDS-style spatially-hashed reuse-distance sampling.
//!
//! Exact Mattson MRCs (see [`mrc`](crate::mrc)) cost `O(T log T)` time and
//! `O(M)` space for `M` distinct ids — too much for production-scale
//! traces. SHARDS (Waldspurger et al., FAST '15) observes that reuse
//! distances can be estimated from a *spatially hashed* sample: keep an
//! access iff
//!
//! ```text
//! hash(id) mod P < T
//! ```
//!
//! so that every access to a sampled id is kept (reuse pairs survive
//! intact), the sample rate is `R = T / P`, and each measured reuse
//! distance is an unbiased `R`-thinning of the true one — rescaling by
//! `1/R` recovers the full-trace distance. Each sampled access carries
//! weight `1/R`, and the curve uses the paper's *SHARDS-adj* correction:
//! miss counts are normalized against the expected sampled weight (the
//! trace length), not the actual one, which keeps heavy-hitter sampling
//! luck out of the tails.
//!
//! Two operating modes:
//!
//! * **Fixed-rate** ([`SamplerConfig::fixed`]): constant threshold; work
//!   and memory shrink by `R` (rates down to 0.1 % remain accurate on
//!   skewed traces).
//! * **Fixed-size** ([`SamplerConfig::adaptive`]): start at rate 1 and
//!   *lower* the threshold whenever the sample holds more than `s_max`
//!   distinct ids, evicting the ids with the largest hashes — memory is
//!   `O(s_max)` regardless of trace size or working-set size.
//!
//! The hash is [`mix64`] — a full-avalanche bijective mixer — restricted
//! to [`MODULUS`] buckets, so threshold comparisons see uniform bits; the
//! table hash used elsewhere (`FxHasher`) is too weak for thresholding.
//!
//! At rate `1.0` the sampler degenerates to the exact algorithm and the
//! returned curve is bit-identical to [`item_mrc`](crate::item_mrc) /
//! [`block_mrc`](crate::block_mrc) output — tested, and relied on by the
//! CLI's `--exact` flag.

use crate::mrc::{Fenwick, MissRatioCurve};
use gc_types::{mix64, BlockMap, CompiledTrace, FxHashMap, Trace};
use std::collections::BinaryHeap;

/// Hash-space size `P` for the `hash(id) mod P < T` filter. 24 bits gives
/// rate granularity of `2^-24` ≈ 6e-8 — far finer than any useful rate —
/// while leaving 40 bits of the mixed hash unused (hygiene, not need).
pub const MODULUS: u64 = 1 << 24;

/// Configuration for the spatially-hashed sampler.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Initial sample rate `R = T / P` in `(0, 1]`.
    pub rate: f64,
    /// Seed salting the spatial hash, so independent runs can sample
    /// different id subsets. The same seed always selects the same ids.
    pub seed: u64,
    /// Fixed-size mode: cap on distinct sampled ids. When the sample
    /// exceeds this, the threshold is lowered (largest-hash ids evicted)
    /// until it fits.
    pub s_max: Option<usize>,
}

impl SamplerConfig {
    /// Fixed-rate sampling at `rate` ∈ (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn fixed(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sample rate must be in (0, 1], got {rate}"
        );
        SamplerConfig {
            rate,
            seed: 0,
            s_max: None,
        }
    }

    /// Fixed-size sampling: start at rate 1 and adapt the threshold down
    /// so the sample never holds more than `s_max` distinct ids.
    ///
    /// # Panics
    ///
    /// Panics if `s_max` is zero.
    pub fn adaptive(s_max: usize) -> Self {
        assert!(s_max > 0, "s_max must be positive");
        SamplerConfig {
            rate: 1.0,
            seed: 0,
            s_max: Some(s_max),
        }
    }

    /// Replace the hash seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The initial integer threshold `T` ∈ [1, [`MODULUS`]].
    fn initial_threshold(&self) -> u64 {
        ((self.rate * MODULUS as f64).round() as u64).clamp(1, MODULUS)
    }
}

/// What the sampler actually did — useful for reporting and diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Accesses that passed the spatial filter.
    pub sampled_accesses: u64,
    /// Distinct ids in the sample when the pass finished.
    pub distinct_sampled: usize,
    /// Final effective rate `T / P` (equals the configured rate in
    /// fixed-rate mode; ≤ 1 and typically lower in adaptive mode).
    pub final_rate: f64,
}

/// Max-heap entry: adaptive mode evicts the largest-hash ids first.
type HeapEntry = (u64, u64); // (hash, id)

fn sampled_mrc_over_ids(
    ids: impl Iterator<Item = u64>,
    len: usize,
    max_size: usize,
    cfg: &SamplerConfig,
) -> (MissRatioCurve, SampleStats) {
    let salt = mix64(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    let mut threshold = cfg.initial_threshold();

    // Weighted distance histogram. `cold_far_weight` merges first-touch
    // and beyond-max_size distances: both miss at every reported size.
    let mut hist = vec![0f64; max_size + 1];
    let mut cold_far_weight = 0f64;
    let mut total_weight = 0f64;
    let mut sampled_accesses = 0u64;

    let mut fenwick = Fenwick::new(len);
    let mut last_pos: FxHashMap<u64, usize> = FxHashMap::default();
    // Only populated in adaptive mode; tracks (hash, id) per sampled id so
    // threshold lowering can evict the largest hashes.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

    for (pos, id) in ids.enumerate() {
        let h = mix64(id ^ salt) & (MODULUS - 1);
        if h >= threshold {
            continue;
        }
        // Weight and distance scaling use the rate in force *when the
        // access is observed*; adaptive lowering only affects later
        // accesses (standard SHARDS bookkeeping).
        let rate_now = threshold as f64 / MODULUS as f64;
        let w = 1.0 / rate_now;
        sampled_accesses += 1;
        total_weight += w;

        match last_pos.insert(id, pos) {
            None => {
                cold_far_weight += w;
                if cfg.s_max.is_some() {
                    heap.push((h, id));
                }
            }
            Some(prev) => {
                // Sampled distinct ids touched strictly between the two
                // accesses; rescale by 1/R to estimate the full-trace
                // stack distance.
                let between = fenwick.prefix(pos) - fenwick.prefix(prev);
                let scaled = (f64::from(between) * w).round() as usize;
                if scaled < hist.len() {
                    hist[scaled] += w;
                } else {
                    cold_far_weight += w;
                }
                fenwick.add(prev, -1);
            }
        }
        fenwick.add(pos, 1);

        if let Some(s_max) = cfg.s_max {
            while last_pos.len() > s_max {
                // Lower the threshold to the largest hash in the sample
                // and drop every id at or above it. Ids sharing that hash
                // value all go (the filter is strict `<`).
                let (h_max, _) = *heap.peek().expect("sample non-empty over s_max");
                threshold = h_max;
                while let Some(&(h2, id2)) = heap.peek() {
                    if h2 < threshold {
                        break;
                    }
                    heap.pop();
                    if let Some(p) = last_pos.remove(&id2) {
                        fenwick.add(p, -1);
                    }
                }
            }
        }
    }

    let stats = SampleStats {
        sampled_accesses,
        distinct_sampled: last_pos.len(),
        final_rate: threshold as f64 / MODULUS as f64,
    };

    // SHARDS-adj estimator (Waldspurger et al., FAST '15 §3.3): normalize
    // by the *expected* sampled weight — exactly the trace length, since
    // each access contributes weight `1/R` with probability `R` — and
    // credit the difference between expected and actual to the distance-0
    // bucket. Dividing by the actual total instead would propagate
    // heavy-hitter sampling luck to every size: a hot id has tiny reuse
    // distances, so whether it lands in the sample swings the total
    // weight while barely touching the tails. With the adjustment,
    // `misses[0]` is exactly `len` and each tail is an unbiased count
    // estimate in its own right. At rate 1.0 the correction is exactly
    // zero and the rounded counts are bit-identical to the exact
    // algorithm's.
    let mut misses = vec![0u64; max_size + 1];
    if total_weight > 0.0 {
        hist[0] += len as f64 - total_weight;
        let mut tail = cold_far_weight;
        for k in (0..=max_size).rev() {
            tail += hist[k];
            misses[k] = (tail.round().max(0.0) as u64).min(len as u64);
        }
    } else if len > 0 {
        // Nothing sampled (tiny rate, unlucky ids): no information, so
        // conservatively report the all-miss curve rather than a fake hit.
        misses.fill(len as u64);
    }
    (
        MissRatioCurve {
            accesses: len as u64,
            misses,
        },
        stats,
    )
}

/// Sampled item-granular MRC — the estimator of [`item_mrc`](crate::item_mrc).
///
/// Runtime and memory scale with the sample rate: at 1 % the Fenwick pass
/// touches ~1 % of accesses and the position map holds ~1 % of distinct
/// ids, for a near-linear end-to-end pass dominated by the hash filter.
pub fn sampled_item_mrc(trace: &Trace, max_size: usize, cfg: &SamplerConfig) -> MissRatioCurve {
    sampled_item_mrc_with_stats(trace, max_size, cfg).0
}

/// [`sampled_item_mrc`], also returning [`SampleStats`].
pub fn sampled_item_mrc_with_stats(
    trace: &Trace,
    max_size: usize,
    cfg: &SamplerConfig,
) -> (MissRatioCurve, SampleStats) {
    sampled_mrc_over_ids(trace.iter().map(|i| i.0), trace.len(), max_size, cfg)
}

/// [`sampled_item_mrc`] over a compiled trace.
///
/// The spatial filter must hash the *original* keys — `mix64` of a dense
/// rename would select a different id subset and change the estimate — so
/// this streams each access through the compiled decode table (one flat
/// `Vec` load) instead of re-mixing sparse ids from a `Trace`. Same ids
/// hashed, same seed: bit-identical to [`sampled_item_mrc`] on the source
/// trace.
pub fn sampled_item_mrc_compiled(
    compiled: &CompiledTrace,
    max_size: usize,
    cfg: &SamplerConfig,
) -> MissRatioCurve {
    sampled_item_mrc_compiled_with_stats(compiled, max_size, cfg).0
}

/// [`sampled_item_mrc_compiled`], also returning [`SampleStats`].
pub fn sampled_item_mrc_compiled_with_stats(
    compiled: &CompiledTrace,
    max_size: usize,
    cfg: &SamplerConfig,
) -> (MissRatioCurve, SampleStats) {
    let dense = compiled
        .map()
        .dense_universe()
        .expect("compiled trace always carries a dense map");
    let decode = dense.decode_table();
    sampled_mrc_over_ids(
        compiled.accesses().iter().map(|a| decode[a.item as usize]),
        compiled.len(),
        max_size,
        cfg,
    )
}

/// Sampled block-granular MRC — the estimator of
/// [`block_mrc`](crate::block_mrc), hashing *block* ids so all items of a
/// sampled block are kept together (granularity-consistent sampling).
pub fn sampled_block_mrc(
    trace: &Trace,
    map: &BlockMap,
    max_slots: usize,
    cfg: &SamplerConfig,
) -> MissRatioCurve {
    sampled_block_mrc_with_stats(trace, map, max_slots, cfg).0
}

/// [`sampled_block_mrc`], also returning [`SampleStats`].
pub fn sampled_block_mrc_with_stats(
    trace: &Trace,
    map: &BlockMap,
    max_slots: usize,
    cfg: &SamplerConfig,
) -> (MissRatioCurve, SampleStats) {
    sampled_mrc_over_ids(
        trace.iter().map(|i| map.block_of(i).0),
        trace.len(),
        max_slots,
        cfg,
    )
}

/// [`sampled_block_mrc`] over a compiled trace: the precomputed block
/// column replaces the per-access `block_of` lookup, and the block decode
/// table recovers the source block ids the spatial hash must see (see
/// [`sampled_item_mrc_compiled`] for why decoding matters). Bit-identical
/// to [`sampled_block_mrc`] on the source trace and map.
pub fn sampled_block_mrc_compiled(
    compiled: &CompiledTrace,
    max_slots: usize,
    cfg: &SamplerConfig,
) -> MissRatioCurve {
    sampled_block_mrc_compiled_with_stats(compiled, max_slots, cfg).0
}

/// [`sampled_block_mrc_compiled`], also returning [`SampleStats`].
pub fn sampled_block_mrc_compiled_with_stats(
    compiled: &CompiledTrace,
    max_slots: usize,
    cfg: &SamplerConfig,
) -> (MissRatioCurve, SampleStats) {
    let dense = compiled
        .map()
        .dense_universe()
        .expect("compiled trace always carries a dense map");
    let decode = dense.block_decode_table();
    sampled_mrc_over_ids(
        compiled.accesses().iter().map(|a| decode[a.block as usize]),
        compiled.len(),
        max_slots,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrc::{block_mrc, item_mrc};

    fn skewed_trace(len: usize, universe: u64, seed: u64) -> Trace {
        // Zipf-ish: square a uniform variate to concentrate mass on low
        // ids, plus a streaming tail — enough structure for a curve with
        // an actual knee.
        let mut x = seed | 1;
        let ids = (0..len).map(move |i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            if x % 5 == 0 {
                universe + (i as u64 % (universe / 2))
            } else {
                ((u * u) * universe as f64) as u64
            }
        });
        Trace::from_ids(ids)
    }

    #[test]
    fn rate_one_is_bit_identical_to_exact() {
        let trace = skewed_trace(30_000, 2000, 7);
        let exact = item_mrc(&trace, 512);
        let sampled = sampled_item_mrc(&trace, 512, &SamplerConfig::fixed(1.0));
        assert_eq!(exact.accesses, sampled.accesses);
        assert_eq!(exact.misses, sampled.misses);

        let map = BlockMap::strided(16);
        let exact_b = block_mrc(&trace, &map, 64);
        let sampled_b = sampled_block_mrc(&trace, &map, 64, &SamplerConfig::fixed(1.0));
        assert_eq!(exact_b.misses, sampled_b.misses);
    }

    #[test]
    fn deterministic_for_seed_and_rate() {
        let trace = skewed_trace(40_000, 3000, 99);
        let cfg = SamplerConfig::fixed(0.05).with_seed(1234);
        let a = sampled_item_mrc(&trace, 400, &cfg);
        let b = sampled_item_mrc(&trace, 400, &cfg);
        assert_eq!(a.misses, b.misses);
        // A different seed samples different ids — almost surely a
        // different curve on this trace.
        let c = sampled_item_mrc(&trace, 400, &cfg.clone().with_seed(4321));
        assert_ne!(a.misses, c.misses);
    }

    #[test]
    fn curves_converge_to_exact_as_rate_rises() {
        let trace = skewed_trace(60_000, 2000, 21);
        let exact = item_mrc(&trace, 512);
        let err = |rate: f64| {
            let approx = sampled_item_mrc(&trace, 512, &SamplerConfig::fixed(rate).with_seed(5));
            (0..=512)
                .map(|k| (exact.miss_ratio(k) - approx.miss_ratio(k)).abs())
                .fold(0.0f64, f64::max)
        };
        let e_10 = err(0.10);
        let e_50 = err(0.50);
        let e_90 = err(0.90);
        assert!(e_10 < 0.08, "10% rate error {e_10}");
        assert!(e_50 < 0.04, "50% rate error {e_50}");
        assert!(e_90 < 0.02, "90% rate error {e_90}");
    }

    #[test]
    fn block_curve_converges_too() {
        let trace = skewed_trace(60_000, 4000, 77);
        let map = BlockMap::strided(16);
        let exact = block_mrc(&trace, &map, 128);
        // The block universe is tiny (~250 ids of very unequal mass), far
        // below the sampled-id count SHARDS assumes; the realized sample
        // weight alone swings by ±15% at rate 0.5. Use a generous rate —
        // the point here is that *block-granular* hashing converges like
        // item hashing does, not low-rate accuracy (that is exercised at
        // scale by the `mrc_report` bench).
        let approx = sampled_block_mrc(&trace, &map, 128, &SamplerConfig::fixed(0.9).with_seed(2));
        let max_err = (0..=128)
            .map(|k| (exact.miss_ratio(k) - approx.miss_ratio(k)).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.05, "block curve error {max_err}");
    }

    #[test]
    fn sampled_curve_is_monotone() {
        let trace = skewed_trace(50_000, 2500, 3);
        for rate in [0.01, 0.1, 0.5] {
            let curve = sampled_item_mrc(&trace, 300, &SamplerConfig::fixed(rate));
            assert!(
                curve.misses.windows(2).all(|w| w[1] <= w[0]),
                "non-monotone at rate {rate}"
            );
        }
    }

    #[test]
    fn adaptive_with_roomy_cap_matches_exact() {
        // s_max ≥ distinct ids: the threshold never drops, so the pass is
        // the exact algorithm.
        let trace = skewed_trace(20_000, 500, 13);
        let exact = item_mrc(&trace, 256);
        let (curve, stats) =
            sampled_item_mrc_with_stats(&trace, 256, &SamplerConfig::adaptive(100_000));
        assert_eq!(exact.misses, curve.misses);
        assert!((stats.final_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_caps_sample_size_and_stays_accurate() {
        let trace = skewed_trace(80_000, 8000, 41);
        let exact = item_mrc(&trace, 1024);
        let (curve, stats) =
            sampled_item_mrc_with_stats(&trace, 1024, &SamplerConfig::adaptive(512));
        assert!(
            stats.distinct_sampled <= 512,
            "sample overflowed: {}",
            stats.distinct_sampled
        );
        assert!(stats.final_rate < 1.0, "threshold never adapted");
        let max_err = (0..=1024)
            .map(|k| (exact.miss_ratio(k) - curve.miss_ratio(k)).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 0.08, "adaptive error {max_err}");
    }

    #[test]
    fn compiled_sampling_is_bit_identical_to_sparse() {
        // Scattered sparse keys: dense renaming changes every id, so this
        // fails unless the compiled pass hashes the *decoded* ids.
        let trace = Trace::from_ids(skewed_trace(40_000, 2500, 19).iter().map(|i| i.0 * 9_973));
        let map = BlockMap::strided(16);
        let compiled = CompiledTrace::compile(&trace, &map).unwrap();
        for cfg in [
            SamplerConfig::fixed(0.05).with_seed(7),
            SamplerConfig::fixed(1.0),
            SamplerConfig::adaptive(400).with_seed(3),
        ] {
            let (sparse, s_stats) = sampled_item_mrc_with_stats(&trace, 300, &cfg);
            let (dense, d_stats) = sampled_item_mrc_compiled_with_stats(&compiled, 300, &cfg);
            assert_eq!(sparse.misses, dense.misses, "{cfg:?}");
            assert_eq!(s_stats.sampled_accesses, d_stats.sampled_accesses);
            assert_eq!(s_stats.distinct_sampled, d_stats.distinct_sampled);

            let sparse_b = sampled_block_mrc(&trace, &map, 64, &cfg);
            let dense_b = sampled_block_mrc_compiled(&compiled, 64, &cfg);
            assert_eq!(sparse_b.misses, dense_b.misses, "block {cfg:?}");
        }
    }

    #[test]
    fn compiled_block_sampling_survives_ragged_maps_and_recompilation() {
        use gc_types::ItemId;
        // Ragged explicit map: block ids are group indices, not strides.
        let groups: Vec<Vec<ItemId>> = (0..40usize)
            .map(|g| {
                let size = 1 + (g * 3) % 5;
                (0..size)
                    .map(|j| ItemId((g * 65_537 + j * 101) as u64))
                    .collect()
            })
            .collect();
        let map = BlockMap::from_groups(groups.clone()).unwrap();
        let mut x = 5u64;
        let trace = Trace::from_requests(
            (0..20_000)
                .map(|_| {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    let g = (x % 40) as usize;
                    groups[g][(x >> 8) as usize % groups[g].len()]
                })
                .collect(),
        );
        let compiled = CompiledTrace::compile(&trace, &map).unwrap();
        // Re-compiling the dense stream against the dense map must compose
        // the block decode tables, not lose them.
        let dense_trace = Trace::from_requests(compiled.iter_items().collect());
        let twice = CompiledTrace::compile(&dense_trace, compiled.map()).unwrap();
        let cfg = SamplerConfig::fixed(0.2).with_seed(11);
        let sparse = sampled_block_mrc(&trace, &map, 32, &cfg);
        for ct in [&compiled, &twice] {
            let dense = sampled_block_mrc_compiled(ct, 32, &cfg);
            assert_eq!(sparse.misses, dense.misses);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let curve = sampled_item_mrc(&Trace::new(), 16, &SamplerConfig::fixed(0.01));
        assert_eq!(curve.accesses, 0);
        assert!(curve.misses.iter().all(|&m| m == 0));
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_rejected() {
        let _ = SamplerConfig::fixed(0.0);
    }
}
