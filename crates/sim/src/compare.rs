//! Side-by-side policy comparison over a single trace.

use crate::engine::simulate_with_warmup;
use crate::stats::SimStats;
use gc_policies::PolicyKind;
use gc_types::{BlockMap, Trace};

/// One policy's line in a comparison table.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Policy label.
    pub label: String,
    /// Full policy name.
    pub policy_name: String,
    /// Run statistics.
    pub stats: SimStats,
}

/// Run each policy (at the same capacity) over the trace and collect rows,
/// sorted by ascending miss count.
pub fn compare_policies(
    kinds: &[PolicyKind],
    capacity: usize,
    trace: &Trace,
    map: &BlockMap,
    warmup: usize,
) -> Vec<ComparisonRow> {
    let mut rows: Vec<ComparisonRow> = kinds
        .iter()
        .map(|kind| {
            let mut policy = kind.build(capacity, map);
            let stats = simulate_with_warmup(&mut policy, trace, warmup);
            ComparisonRow {
                label: kind.label(),
                policy_name: policy.name(),
                stats,
            }
        })
        .collect();
    rows.sort_by_key(|r| r.stats.misses);
    rows
}

/// Render comparison rows as an aligned text table.
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = format!(
        "{:<14} {:>10} {:>10} {:>9} {:>10} {:>10} {:>7}\n",
        "policy", "accesses", "misses", "fault", "temporal", "spatial", "width"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>9.4} {:>10} {:>10} {:>7.2}\n",
            r.label,
            r.stats.accesses,
            r.stats.misses,
            r.stats.fault_rate(),
            r.stats.temporal_hits,
            r.stats.spatial_hits,
            r.stats.load_width(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_trace::synthetic;

    #[test]
    fn iblp_wins_on_mixed_locality() {
        // The headline claim of the paper's design sections: on a workload
        // with both temporal reuse (hot sparse items) and spatial streaming
        // (fresh whole blocks), IBLP beats a pure item cache and a pure
        // block cache of the same size. Each round touches 48 hot items
        // (one per block — worst case for block caches) and streams one
        // brand-new block of 16 (worst case for item caches).
        let b = 16u64;
        let mut trace = Trace::new();
        for round in 0..500u64 {
            for hot in 0..48u64 {
                trace.push(gc_types::ItemId(hot * b));
            }
            let fresh = 1_000 + round;
            for off in 0..b {
                trace.push(gc_types::ItemId(fresh * b + off));
            }
        }
        let map = BlockMap::strided(b as usize);
        let rows = compare_policies(
            &[
                PolicyKind::ItemLru,
                PolicyKind::BlockLru,
                PolicyKind::IblpBalanced,
            ],
            256,
            &trace,
            &map,
            128,
        );
        let misses = |label: &str| rows.iter().find(|r| r.label == label).unwrap().stats.misses;
        let iblp = misses("iblp");
        assert!(
            iblp < misses("item-lru"),
            "iblp {iblp} vs item-lru {}",
            misses("item-lru")
        );
        assert!(
            iblp < misses("block-lru"),
            "iblp {iblp} vs block-lru {}",
            misses("block-lru")
        );
    }

    #[test]
    fn rows_sorted_by_misses() {
        let cfg = synthetic::BlockRunConfig::default();
        let trace = synthetic::block_runs(&cfg);
        let map = synthetic::block_runs_map(&cfg);
        let rows = compare_policies(&PolicyKind::standard_roster(1), 256, &trace, &map, 0);
        assert!(rows
            .windows(2)
            .all(|w| w[0].stats.misses <= w[1].stats.misses));
        assert_eq!(rows.len(), PolicyKind::standard_roster(1).len());
    }

    #[test]
    fn table_renders_all_rows() {
        let cfg = synthetic::BlockRunConfig {
            len: 2000,
            ..Default::default()
        };
        let trace = synthetic::block_runs(&cfg);
        let map = synthetic::block_runs_map(&cfg);
        let rows = compare_policies(&[PolicyKind::ItemLru], 64, &trace, &map, 0);
        let table = render_table(&rows);
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("item-lru"));
    }
}
