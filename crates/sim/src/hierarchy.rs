//! Two-level cache-hierarchy simulation — the Figure 1 setting, literally.
//!
//! The paper's model isolates one granularity boundary; a real system has
//! the GC cache sitting *behind* a smaller upper-level cache (e.g. an SRAM
//! L1 in front of a DRAM L2). The upper level filters the request stream:
//! only its misses reach the GC cache, which changes the reference pattern
//! the GC cache sees (temporal locality is absorbed above, spatial
//! locality survives). This module simulates that composition and reports
//! per-level statistics, so the crossover between item/block/IBLP policies
//! can be studied under realistic filtering.

use crate::engine::SpatialSet;
use crate::stats::SimStats;
use gc_policies::GcPolicy;
use gc_types::{AccessKind, AccessScratch, Trace};

/// Per-level results of a hierarchy simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Upper-level (L1) statistics over the full request stream.
    pub l1: SimStats,
    /// Lower-level (L2) statistics over the stream of L1 misses.
    pub l2: SimStats,
}

impl HierarchyStats {
    /// Fraction of all requests that had to go past L2 to backing storage.
    pub fn global_fault_rate(&self) -> f64 {
        if self.l1.accesses == 0 {
            0.0
        } else {
            self.l2.misses as f64 / self.l1.accesses as f64
        }
    }

    /// Average memory-access time under unit L1 hit cost, `l2_cost` for an
    /// L2 hit and `mem_cost` for a full miss — the systems figure of merit.
    pub fn amat(&self, l2_cost: f64, mem_cost: f64) -> f64 {
        if self.l1.accesses == 0 {
            return 0.0;
        }
        let total = self.l1.accesses as f64;
        let l1_hits = self.l1.hits() as f64;
        let l2_hits = self.l2.hits() as f64;
        let misses = self.l2.misses as f64;
        (l1_hits + l2_cost * l2_hits + mem_cost * misses) / total
    }
}

/// Simulate `trace` through an L1 policy backed by an L2 policy.
///
/// Semantics:
/// * every request goes to L1; an L1 hit never reaches L2 (the §5.1
///   filtering property, now between *levels*);
/// * an L1 miss is forwarded to L2 (where it may hit or miss), and the
///   requested item is installed in L1 (items L2 co-loads stay in L2 —
///   granularity change happens below L1, as in Figure 1);
/// * spatial/temporal attribution within each level follows the same §2
///   rule the single-level engine uses.
pub fn simulate_hierarchy<L1, L2>(l1: &mut L1, l2: &mut L2, trace: &Trace) -> HierarchyStats
where
    L1: GcPolicy + ?Sized,
    L2: GcPolicy + ?Sized,
{
    let mut stats = HierarchyStats::default();
    let mut scratch = AccessScratch::new();
    let mut l2_spatial = SpatialSet::new();

    for item in trace.iter() {
        stats.l1.accesses += 1;
        match l1.access_into(item, &mut scratch) {
            AccessKind::Hit => {
                stats.l1.temporal_hits += 1;
                continue;
            }
            AccessKind::Miss => {
                stats.l1.misses += 1;
                stats.l1.items_loaded += scratch.loaded.len() as u64;
                stats.l1.items_evicted += scratch.evicted.len() as u64;
            }
        }
        // Forward the miss to L2.
        stats.l2.accesses += 1;
        match l2.access_into(item, &mut scratch) {
            AccessKind::Hit => {
                if l2_spatial.remove(item) {
                    stats.l2.spatial_hits += 1;
                } else {
                    stats.l2.temporal_hits += 1;
                }
            }
            AccessKind::Miss => {
                stats.l2.misses += 1;
                stats.l2.items_loaded += scratch.loaded.len() as u64;
                stats.l2.items_evicted += scratch.evicted.len() as u64;
                for &z in &scratch.loaded {
                    if z != item {
                        l2_spatial.insert(z);
                    }
                }
                l2_spatial.remove(item);
                for &z in &scratch.evicted {
                    l2_spatial.remove(z);
                }
            }
        }
        stats.l1.peak_len = stats.l1.peak_len.max(l1.len());
        stats.l2.peak_len = stats.l2.peak_len.max(l2.len());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, Iblp, ItemLru};
    use gc_types::{BlockMap, ItemId};

    #[test]
    fn l1_absorbs_temporal_locality() {
        let map = BlockMap::strided(4);
        let mut l1 = ItemLru::new(4);
        let mut l2 = BlockLru::new(32, map);
        // Hammer one item: only the first access reaches L2.
        let trace = Trace::from_ids(std::iter::repeat(7).take(100));
        let s = simulate_hierarchy(&mut l1, &mut l2, &trace);
        assert_eq!(s.l1.temporal_hits, 99);
        assert_eq!(s.l2.accesses, 1);
        assert_eq!(s.l2.misses, 1);
    }

    #[test]
    fn l2_catches_spatial_locality_l1_cannot() {
        let map = BlockMap::strided(8);
        let mut l1 = ItemLru::new(4);
        let mut l2 = BlockLru::new(64, map);
        // Streaming: everything misses L1, but L2 hits 7 of every 8.
        let trace = Trace::from_ids(0..800u64);
        let s = simulate_hierarchy(&mut l1, &mut l2, &trace);
        assert_eq!(s.l1.misses, 800);
        assert_eq!(s.l2.misses, 100);
        assert_eq!(s.l2.spatial_hits, 700);
        assert!((s.global_fault_rate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn amat_orders_policies_sensibly() {
        let map = BlockMap::strided(8);
        let trace = {
            // Mix: hot sparse items + streams, as in the examples.
            let mut t = Trace::new();
            for round in 0..300u64 {
                for hot in 0..48u64 {
                    t.push(ItemId(hot * 8));
                }
                for off in 0..8u64 {
                    t.push(ItemId((10_000 + round) * 8 + off));
                }
            }
            t
        };
        let run = |l2: &mut dyn GcPolicy| {
            let mut l1 = ItemLru::new(8);
            simulate_hierarchy(&mut l1, l2, &trace).amat(5.0, 100.0)
        };
        let mut iblp = Iblp::balanced(256, map.clone());
        let mut blk = BlockLru::new(256, map);
        let amat_iblp = run(&mut iblp);
        let amat_blk = run(&mut blk);
        assert!(
            amat_iblp < amat_blk,
            "IBLP L2 should win the mixed workload: {amat_iblp} vs {amat_blk}"
        );
    }

    #[test]
    fn accounting_adds_up() {
        let map = BlockMap::strided(4);
        let mut l1 = ItemLru::new(16);
        let mut l2 = Iblp::balanced(64, map);
        let mut x = 13u64;
        let ids: Vec<u64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x % 300
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let s = simulate_hierarchy(&mut l1, &mut l2, &trace);
        assert_eq!(s.l1.accesses, 5000);
        assert_eq!(s.l1.hits() + s.l1.misses, 5000);
        assert_eq!(s.l2.accesses, s.l1.misses);
        assert_eq!(s.l2.hits() + s.l2.misses, s.l2.accesses);
        assert!(s.global_fault_rate() <= s.l1.fault_rate());
    }

    #[test]
    fn empty_trace_zeroes() {
        let map = BlockMap::strided(4);
        let mut l1 = ItemLru::new(4);
        let mut l2 = BlockLru::new(16, map);
        let s = simulate_hierarchy(&mut l1, &mut l2, &Trace::new());
        assert_eq!(s.global_fault_rate(), 0.0);
        assert_eq!(s.amat(5.0, 100.0), 0.0);
    }
}
