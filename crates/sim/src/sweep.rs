//! Parallel parameter-sweep harness.
//!
//! Benchmarks sweep (policy × capacity) grids over a shared read-only
//! trace. Each job is independent, so the harness fans them out over the
//! shared [`pool`](crate::pool) — crossbeam scoped threads pulling job
//! indices off an atomic cursor, results returned in job order.

use crate::engine::simulate_with_warmup;
use crate::pool;
use crate::stats::SimStats;
use gc_policies::PolicyKind;
use gc_types::{BlockMap, Trace};

/// One cell of a sweep grid.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Policy to instantiate.
    pub kind: PolicyKind,
    /// Cache capacity in items.
    pub capacity: usize,
    /// Requests excluded from statistics at the front of the trace.
    pub warmup: usize,
}

/// The outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The job that produced this result.
    pub job: SweepJob,
    /// Policy display name (includes parameters).
    pub policy_name: String,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Run every job against `trace`/`map` using up to `threads` worker
/// threads (`0` means one thread per available core).
///
/// Jobs are claimed dynamically, so wildly uneven job costs (a 1 Ki cache
/// vs a 1 Mi cache) still balance.
pub fn run_sweep(
    jobs: &[SweepJob],
    trace: &Trace,
    map: &BlockMap,
    threads: usize,
) -> Vec<SweepResult> {
    pool::run_indexed(jobs.len(), threads, |idx| run_one(&jobs[idx], trace, map))
}

fn run_one(job: &SweepJob, trace: &Trace, map: &BlockMap) -> SweepResult {
    let mut policy = job.kind.build(job.capacity, map);
    // Materialize the display name before the simulation so the one String
    // this job owns is allocated up front, leaving the measured hot loop
    // allocation-free.
    let policy_name = policy.name();
    let stats = simulate_with_warmup(&mut policy, trace, job.warmup);
    SweepResult {
        job: job.clone(),
        policy_name,
        stats,
    }
}

/// Render sweep results as CSV (`label,capacity,accesses,misses,...`).
pub fn to_csv(results: &[SweepResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "policy,capacity,accesses,misses,fault_rate,temporal_hits,spatial_hits,load_width\n",
    );
    for r in results {
        // `write!` into the buffer (and `Display` on the kind) keeps each
        // row allocation-free; formatting a String cannot fail.
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{:.3}",
            r.job.kind,
            r.job.capacity,
            r.stats.accesses,
            r.stats.misses,
            r.stats.fault_rate(),
            r.stats.temporal_hits,
            r.stats.spatial_hits,
            r.stats.load_width(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_trace::synthetic;

    fn grid() -> Vec<SweepJob> {
        let mut jobs = Vec::new();
        for kind in [
            PolicyKind::ItemLru,
            PolicyKind::BlockLru,
            PolicyKind::IblpBalanced,
        ] {
            for capacity in [32usize, 64, 128] {
                jobs.push(SweepJob {
                    kind: kind.clone(),
                    capacity,
                    warmup: 0,
                });
            }
        }
        jobs
    }

    fn trace_and_map() -> (Trace, BlockMap) {
        let cfg = synthetic::BlockRunConfig {
            num_blocks: 128,
            block_size: 8,
            block_theta: 0.7,
            spatial_locality: 0.6,
            len: 20_000,
            seed: 17,
        };
        (synthetic::block_runs(&cfg), synthetic::block_runs_map(&cfg))
    }

    #[test]
    fn parallel_matches_serial() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let serial = run_sweep(&jobs, &trace, &map, 1);
        let parallel = run_sweep(&jobs, &trace, &map, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.stats, p.stats, "job {:?}", s.job);
            assert_eq!(s.policy_name, p.policy_name);
        }
    }

    #[test]
    fn results_align_with_jobs() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let results = run_sweep(&jobs, &trace, &map, 0);
        for (job, result) in jobs.iter().zip(&results) {
            assert_eq!(job.capacity, result.job.capacity);
            assert_eq!(job.kind, result.job.kind);
            assert_eq!(result.stats.accesses, trace.len() as u64);
        }
    }

    #[test]
    fn bigger_caches_never_do_worse_for_lru() {
        // LRU's inclusion property: fault rate is monotone in capacity.
        let (trace, map) = trace_and_map();
        let jobs: Vec<SweepJob> = [32usize, 64, 128, 256]
            .iter()
            .map(|&capacity| SweepJob {
                kind: PolicyKind::ItemLru,
                capacity,
                warmup: 0,
            })
            .collect();
        let results = run_sweep(&jobs, &trace, &map, 2);
        for pair in results.windows(2) {
            assert!(
                pair[1].stats.misses <= pair[0].stats.misses,
                "LRU not monotone: {:?}",
                pair.iter().map(|r| r.stats.misses).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_jobs_ok() {
        let (trace, map) = trace_and_map();
        assert!(run_sweep(&[], &trace, &map, 4).is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (trace, map) = trace_and_map();
        let jobs = vec![SweepJob {
            kind: PolicyKind::ItemLru,
            capacity: 32,
            warmup: 0,
        }];
        let csv = to_csv(&run_sweep(&jobs, &trace, &map, 1));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("policy,capacity"));
        assert!(lines[1].starts_with("item-lru,32,"));
    }
}
