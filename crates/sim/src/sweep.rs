//! Parallel parameter-sweep harness.
//!
//! Benchmarks sweep (policy × capacity) grids over a shared read-only
//! trace. Each job is independent, so the harness fans them out over the
//! shared [`pool`](crate::pool) — crossbeam scoped threads pulling job
//! indices off an atomic cursor, results returned in job order.

use crate::checkpoint::{self, StableHasher, SweepCellOutcome, SweepCellRecord, SweepCheckpoint};
use crate::engine::{simulate_compiled_with_warmup, simulate_with_warmup};
use crate::pool::{self, JobError, PoolOptions};
use crate::stats::SimStats;
use gc_policies::PolicyKind;
use gc_types::{BlockMap, CompiledTrace, GcError, Trace};
use parking_lot::Mutex;
use std::path::Path;

/// One cell of a sweep grid.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Policy to instantiate.
    pub kind: PolicyKind,
    /// Cache capacity in items.
    pub capacity: usize,
    /// Requests excluded from statistics at the front of the trace.
    pub warmup: usize,
}

/// The outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The job that produced this result.
    pub job: SweepJob,
    /// Policy display name (includes parameters).
    pub policy_name: String,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Run every job against `trace`/`map` using up to `threads` worker
/// threads (`0` means one thread per available core).
///
/// Jobs are claimed dynamically, so wildly uneven job costs (a 1 Ki cache
/// vs a 1 Mi cache) still balance.
pub fn run_sweep(
    jobs: &[SweepJob],
    trace: &Trace,
    map: &BlockMap,
    threads: usize,
) -> Vec<SweepResult> {
    pool::run_indexed(jobs.len(), threads, |idx| run_cell(&jobs[idx], trace, map))
}

/// Run a single sweep cell — the pure function every execution mode
/// (plain, checked, fault-injected) funnels through, which is what makes
/// surviving-cell results bit-identical across modes.
pub fn run_cell(job: &SweepJob, trace: &Trace, map: &BlockMap) -> SweepResult {
    let mut policy = job.kind.build(job.capacity, map);
    // Materialize the display name before the simulation so the one String
    // this job owns is allocated up front, leaving the measured hot loop
    // allocation-free.
    let policy_name = policy.name();
    let stats = simulate_with_warmup(&mut policy, trace, job.warmup);
    SweepResult {
        job: job.clone(),
        policy_name,
        stats,
    }
}

/// [`run_sweep`] over a compiled trace: the one-time compilation pass is
/// amortized across every cell, each of which builds its policy against
/// the dense map and streams the flat access array. Results are
/// bit-identical to [`run_sweep`] on the source trace.
pub fn run_sweep_compiled(
    jobs: &[SweepJob],
    compiled: &CompiledTrace,
    threads: usize,
) -> Vec<SweepResult> {
    pool::run_indexed(jobs.len(), threads, |idx| {
        run_cell_compiled(&jobs[idx], compiled)
    })
}

/// Compiled analogue of [`run_cell`].
pub fn run_cell_compiled(job: &SweepJob, compiled: &CompiledTrace) -> SweepResult {
    let mut policy = job.kind.build(job.capacity, compiled.map());
    let policy_name = policy.name();
    let stats = simulate_compiled_with_warmup(&mut policy, compiled, job.warmup);
    SweepResult {
        job: job.clone(),
        policy_name,
        stats,
    }
}

const CSV_HEADER: &str =
    "policy,capacity,accesses,misses,fault_rate,temporal_hits,spatial_hits,load_width\n";

fn write_csv_row(out: &mut String, r: &SweepResult) {
    use std::fmt::Write as _;
    // `write!` into the buffer (and `Display` on the kind) keeps each
    // row allocation-free; formatting a String cannot fail.
    let _ = writeln!(
        out,
        "{},{},{},{},{:.6},{},{},{:.3}",
        r.job.kind,
        r.job.capacity,
        r.stats.accesses,
        r.stats.misses,
        r.stats.fault_rate(),
        r.stats.temporal_hits,
        r.stats.spatial_hits,
        r.stats.load_width(),
    );
}

/// Render sweep results as CSV (`label,capacity,accesses,misses,...`).
pub fn to_csv(results: &[SweepResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    for r in results {
        write_csv_row(&mut out, r);
    }
    out
}

/// What a checked sweep does when a cell panics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnError {
    /// Abort the run with [`GcError::CellFailed`] at the first failed
    /// cell (after flushing the checkpoint, so completed work survives).
    #[default]
    Fail,
    /// Record the failure and keep going; the failed cell is reported
    /// per-index in [`SweepOutcome::failures`].
    Skip,
}

impl std::str::FromStr for OnError {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fail" => Ok(OnError::Fail),
            "skip" => Ok(OnError::Skip),
            other => Err(format!("unknown error policy {other:?} (fail|skip)")),
        }
    }
}

/// Configuration for a fault-isolated, checkpointable sweep.
#[derive(Default)]
pub struct SweepRunConfig<'a> {
    /// Worker threads, as in [`run_sweep`] (`0` = one per core).
    pub threads: usize,
    /// What to do when a cell panics. Default: [`OnError::Fail`].
    pub on_error: OnError,
    /// Where to write periodic JSON checkpoints (atomically). `None`
    /// disables checkpointing.
    pub checkpoint_path: Option<&'a Path>,
    /// Flush the checkpoint after this many newly completed cells
    /// (clamped to ≥ 1). Smaller = less lost work on a kill, more I/O.
    pub checkpoint_every: usize,
    /// A previously written checkpoint to resume from. Completed cells are
    /// served from it verbatim; missing and failed cells are re-run. The
    /// checkpoint is validated against this run's config fingerprint and
    /// the run is refused on mismatch.
    pub resume: Option<SweepCheckpoint>,
}

/// The outcome of a checked sweep.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-job results in job order; `None` exactly for failed cells
    /// (only possible under [`OnError::Skip`]).
    pub results: Vec<Option<SweepResult>>,
    /// `(cell index, rendered panic payload)` for every failed cell.
    pub failures: Vec<(usize, String)>,
    /// How many cells were served from the resume checkpoint instead of
    /// being re-run.
    pub resumed_cells: usize,
}

impl SweepOutcome {
    /// The completed results, in job order (failed cells skipped).
    pub fn completed(&self) -> impl Iterator<Item = &SweepResult> + '_ {
        self.results.iter().flatten()
    }
}

/// Deterministic fingerprint of everything that affects sweep cell
/// results: the job list, the trace contents, and the block map. Thread
/// count and checkpoint cadence are excluded — they cannot change results.
pub fn sweep_config_hash(jobs: &[SweepJob], trace: &Trace, map: &BlockMap) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("sweep-v1");
    h.write_usize(jobs.len());
    for job in jobs {
        // Debug keeps seeds and parameters that Display drops.
        h.write_str(&format!("{:?}", job.kind));
        h.write_usize(job.capacity);
        h.write_usize(job.warmup);
    }
    h.write_u64(checkpoint::trace_fingerprint(trace));
    h.write_u64(checkpoint::map_fingerprint(map));
    h.finish()
}

/// Incremental checkpoint sink shared by the pool workers.
struct CheckpointSink<'a> {
    ckpt: SweepCheckpoint,
    path: Option<&'a Path>,
    every: usize,
    since_flush: usize,
    write_error: Option<GcError>,
}

impl CheckpointSink<'_> {
    fn record(&mut self, record: SweepCellRecord) {
        self.ckpt.cells.push(record);
        self.since_flush += 1;
        if self.path.is_some() && self.since_flush >= self.every {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let Some(path) = self.path else { return };
        self.since_flush = 0;
        self.ckpt.cells.sort_by_key(|c| c.index);
        if let Err(e) = checkpoint::save_json(&self.ckpt, path) {
            // Keep computing — results are still returned in-memory — but
            // surface the first persistence failure at the end of the run.
            self.write_error.get_or_insert(e);
        }
    }
}

/// Fault-isolated sweep with periodic checkpoints and resume.
///
/// Every cell runs under the checked [`pool`] path, so one panicking cell
/// cannot take down the run: under [`OnError::Skip`] the remaining cells
/// complete with results **bit-identical** to a fault-free run, and under
/// [`OnError::Fail`] the error names the failing cell index. With a
/// checkpoint path configured, completed cells are flushed to disk every
/// [`checkpoint_every`](SweepRunConfig::checkpoint_every) completions
/// (atomic write), and a later invocation can pass the loaded checkpoint
/// as [`resume`](SweepRunConfig::resume) to re-run only the missing and
/// failed cells. Resume output is bit-identical to an uninterrupted run.
pub fn run_sweep_checked(
    jobs: &[SweepJob],
    trace: &Trace,
    map: &BlockMap,
    cfg: &SweepRunConfig<'_>,
) -> Result<SweepOutcome, GcError> {
    let config_hash = sweep_config_hash(jobs, trace, map);
    let mut base = match &cfg.resume {
        Some(ckpt) => {
            ckpt.validate(config_hash, jobs.len())?;
            ckpt.clone()
        }
        None => SweepCheckpoint::new(config_hash, jobs.len()),
    };
    // Completed cells come from the checkpoint; failed cells are re-run,
    // so drop their records before this run appends fresh outcomes.
    base.cells
        .retain(|c| matches!(c.outcome, SweepCellOutcome::Done { .. }));
    let mut done: Vec<Option<SweepCellOutcome>> = (0..jobs.len()).map(|_| None).collect();
    for cell in &base.cells {
        done[cell.index] = Some(cell.outcome.clone());
    }
    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| done[i].is_none()).collect();
    let resumed_cells = jobs.len() - pending.len();

    let sink = Mutex::new(CheckpointSink {
        ckpt: base,
        path: cfg.checkpoint_path,
        every: cfg.checkpoint_every.max(1),
        since_flush: 0,
        write_error: None,
    });
    let on_complete = |slot: usize, outcome: &Result<SweepResult, JobError>| {
        let index = pending[slot];
        let record = match outcome {
            Ok(result) => SweepCellRecord {
                index,
                outcome: SweepCellOutcome::Done {
                    policy_name: result.policy_name.clone(),
                    stats: result.stats.clone(),
                },
            },
            Err(e) => SweepCellRecord {
                index,
                outcome: SweepCellOutcome::Failed {
                    reason: e.to_string(),
                },
            },
        };
        sink.lock().record(record);
    };
    let opts = PoolOptions {
        cancel: None,
        soft_deadline: None,
        on_complete: Some(&on_complete),
    };
    let run = pool::run_indexed_opts(pending.len(), cfg.threads, &opts, |slot| {
        run_cell(&jobs[pending[slot]], trace, map)
    });

    let mut sink = sink.into_inner();
    if cfg.checkpoint_path.is_some() {
        sink.flush();
    }
    if let Some(e) = sink.write_error {
        return Err(e);
    }

    // Assemble in job order: resumed cells from the checkpoint, fresh
    // cells from this run.
    let mut fresh: Vec<Option<Result<SweepResult, JobError>>> =
        run.results.into_iter().map(Some).collect();
    let mut results: Vec<Option<SweepResult>> = Vec::with_capacity(jobs.len());
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut pending_slots = pending.iter().enumerate();
    for (index, job) in jobs.iter().enumerate() {
        if let Some(SweepCellOutcome::Done { policy_name, stats }) = done[index].take() {
            results.push(Some(SweepResult {
                job: job.clone(),
                policy_name,
                stats,
            }));
            continue;
        }
        let (slot, _) = pending_slots
            .next()
            .expect("every non-resumed cell has a pool slot");
        match fresh[slot].take().expect("each slot consumed once") {
            Ok(result) => results.push(Some(result)),
            Err(e) => {
                let reason = match &e {
                    JobError::Panicked { payload, .. } => payload.clone(),
                    JobError::Cancelled { .. } => e.to_string(),
                };
                if cfg.on_error == OnError::Fail {
                    return Err(GcError::CellFailed { index, reason });
                }
                failures.push((index, reason));
                results.push(None);
            }
        }
    }
    Ok(SweepOutcome {
        results,
        failures,
        resumed_cells,
    })
}

/// Render a checked sweep as CSV. Rows of completed cells are
/// byte-identical to [`to_csv`] of a fault-free run; failed cells appear
/// as trailing `# cell <i> ... failed:` comment lines.
pub fn to_csv_checked(outcome: &SweepOutcome, jobs: &[SweepJob]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(CSV_HEADER);
    for r in outcome.completed() {
        write_csv_row(&mut out, r);
    }
    for (index, reason) in &outcome.failures {
        let job = &jobs[*index];
        let _ = writeln!(
            out,
            "# cell {index} ({},{}) failed: {reason}",
            job.kind, job.capacity
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_trace::synthetic;

    fn grid() -> Vec<SweepJob> {
        let mut jobs = Vec::new();
        for kind in [
            PolicyKind::ItemLru,
            PolicyKind::BlockLru,
            PolicyKind::IblpBalanced,
        ] {
            for capacity in [32usize, 64, 128] {
                jobs.push(SweepJob {
                    kind: kind.clone(),
                    capacity,
                    warmup: 0,
                });
            }
        }
        jobs
    }

    fn trace_and_map() -> (Trace, BlockMap) {
        let cfg = synthetic::BlockRunConfig {
            num_blocks: 128,
            block_size: 8,
            block_theta: 0.7,
            spatial_locality: 0.6,
            len: 20_000,
            seed: 17,
        };
        (synthetic::block_runs(&cfg), synthetic::block_runs_map(&cfg))
    }

    #[test]
    fn parallel_matches_serial() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let serial = run_sweep(&jobs, &trace, &map, 1);
        let parallel = run_sweep(&jobs, &trace, &map, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.stats, p.stats, "job {:?}", s.job);
            assert_eq!(s.policy_name, p.policy_name);
        }
    }

    #[test]
    fn compiled_sweep_matches_sparse_bit_identically() {
        let (trace, map) = trace_and_map();
        let compiled = CompiledTrace::compile(&trace, &map).unwrap();
        let jobs = grid();
        let sparse = run_sweep(&jobs, &trace, &map, 2);
        let dense = run_sweep_compiled(&jobs, &compiled, 2);
        assert_eq!(sparse.len(), dense.len());
        for (s, d) in sparse.iter().zip(&dense) {
            assert_eq!(s.stats, d.stats, "job {:?}", s.job);
            assert_eq!(s.policy_name, d.policy_name);
        }
    }

    #[test]
    fn results_align_with_jobs() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let results = run_sweep(&jobs, &trace, &map, 0);
        for (job, result) in jobs.iter().zip(&results) {
            assert_eq!(job.capacity, result.job.capacity);
            assert_eq!(job.kind, result.job.kind);
            assert_eq!(result.stats.accesses, trace.len() as u64);
        }
    }

    #[test]
    fn bigger_caches_never_do_worse_for_lru() {
        // LRU's inclusion property: fault rate is monotone in capacity.
        let (trace, map) = trace_and_map();
        let jobs: Vec<SweepJob> = [32usize, 64, 128, 256]
            .iter()
            .map(|&capacity| SweepJob {
                kind: PolicyKind::ItemLru,
                capacity,
                warmup: 0,
            })
            .collect();
        let results = run_sweep(&jobs, &trace, &map, 2);
        for pair in results.windows(2) {
            assert!(
                pair[1].stats.misses <= pair[0].stats.misses,
                "LRU not monotone: {:?}",
                pair.iter().map(|r| r.stats.misses).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_jobs_ok() {
        let (trace, map) = trace_and_map();
        assert!(run_sweep(&[], &trace, &map, 4).is_empty());
    }

    #[test]
    fn checked_matches_plain_run_bit_identically() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let plain = run_sweep(&jobs, &trace, &map, 1);
        let outcome = run_sweep_checked(&jobs, &trace, &map, &SweepRunConfig::default()).unwrap();
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.resumed_cells, 0);
        for (p, c) in plain.iter().zip(outcome.completed()) {
            assert_eq!(p.stats, c.stats);
            assert_eq!(p.policy_name, c.policy_name);
        }
        // CSV rendering of a clean checked run is byte-identical to the
        // plain renderer.
        assert_eq!(to_csv(&plain), to_csv_checked(&outcome, &jobs));
    }

    #[test]
    fn poisoned_cell_under_skip_leaves_survivors_bit_identical() {
        let (trace, map) = trace_and_map();
        let mut jobs = grid();
        // Capacity 0 fails the policies' capacity check — a genuinely
        // panicking cell through the full production path.
        jobs.insert(
            4,
            SweepJob {
                kind: PolicyKind::ItemLru,
                capacity: 0,
                warmup: 0,
            },
        );
        let cfg = SweepRunConfig {
            threads: 4,
            on_error: OnError::Skip,
            ..SweepRunConfig::default()
        };
        let outcome = run_sweep_checked(&jobs, &trace, &map, &cfg).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].0, 4);
        assert!(outcome.failures[0].1.contains("capacity"));
        assert!(outcome.results[4].is_none());
        // Survivors are bit-identical to a clean serial run of the same
        // jobs minus the poisoned cell.
        let mut clean_jobs = jobs.clone();
        clean_jobs.remove(4);
        let clean = run_sweep(&clean_jobs, &trace, &map, 1);
        let survivors: Vec<&SweepResult> = outcome.completed().collect();
        assert_eq!(survivors.len(), clean.len());
        for (s, c) in survivors.iter().zip(&clean) {
            assert_eq!(s.stats, c.stats, "job {:?}", c.job);
            assert_eq!(s.policy_name, c.policy_name);
        }
    }

    #[test]
    fn poisoned_cell_under_fail_names_the_cell() {
        let (trace, map) = trace_and_map();
        let jobs = vec![
            SweepJob {
                kind: PolicyKind::ItemLru,
                capacity: 64,
                warmup: 0,
            },
            SweepJob {
                kind: PolicyKind::ItemLru,
                capacity: 0,
                warmup: 0,
            },
        ];
        let err = run_sweep_checked(&jobs, &trace, &map, &SweepRunConfig::default()).unwrap_err();
        match err {
            gc_types::GcError::CellFailed { index, .. } => assert_eq!(index, 1),
            other => panic!("expected CellFailed, got {other}"),
        }
    }

    #[test]
    fn resume_from_partial_checkpoint_is_bit_identical() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let reference = run_sweep(&jobs, &trace, &map, 1);

        // Simulate an interrupted run: a checkpoint holding only the first
        // four cells (as the incremental sink would have flushed them).
        let hash = sweep_config_hash(&jobs, &trace, &map);
        let mut partial = SweepCheckpoint::new(hash, jobs.len());
        for (index, r) in reference.iter().enumerate().take(4) {
            partial.cells.push(SweepCellRecord {
                index,
                outcome: SweepCellOutcome::Done {
                    policy_name: r.policy_name.clone(),
                    stats: r.stats.clone(),
                },
            });
        }
        let cfg = SweepRunConfig {
            threads: 2,
            resume: Some(partial),
            ..SweepRunConfig::default()
        };
        let outcome = run_sweep_checked(&jobs, &trace, &map, &cfg).unwrap();
        assert_eq!(outcome.resumed_cells, 4);
        assert_eq!(to_csv(&reference), to_csv_checked(&outcome, &jobs));
    }

    #[test]
    fn resume_reruns_failed_cells() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let hash = sweep_config_hash(&jobs, &trace, &map);
        let mut partial = SweepCheckpoint::new(hash, jobs.len());
        partial.cells.push(SweepCellRecord {
            index: 0,
            outcome: SweepCellOutcome::Failed {
                reason: "transient".into(),
            },
        });
        let cfg = SweepRunConfig {
            resume: Some(partial),
            ..SweepRunConfig::default()
        };
        let outcome = run_sweep_checked(&jobs, &trace, &map, &cfg).unwrap();
        // The failed record was discarded and the cell re-ran cleanly.
        assert_eq!(outcome.resumed_cells, 0);
        assert!(outcome.failures.is_empty());
        assert_eq!(
            to_csv(&run_sweep(&jobs, &trace, &map, 1)),
            to_csv_checked(&outcome, &jobs)
        );
    }

    #[test]
    fn resume_refuses_mismatched_config() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let wrong = SweepCheckpoint::new(0xdead_beef, jobs.len());
        let cfg = SweepRunConfig {
            resume: Some(wrong),
            ..SweepRunConfig::default()
        };
        let err = run_sweep_checked(&jobs, &trace, &map, &cfg).unwrap_err();
        assert!(
            matches!(err, gc_types::GcError::CheckpointMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn config_hash_tracks_jobs_and_trace() {
        let (trace, map) = trace_and_map();
        let jobs = grid();
        let base = sweep_config_hash(&jobs, &trace, &map);
        assert_eq!(base, sweep_config_hash(&jobs, &trace, &map));
        let mut more_jobs = jobs.clone();
        more_jobs.push(SweepJob {
            kind: PolicyKind::ItemLru,
            capacity: 999,
            warmup: 0,
        });
        assert_ne!(base, sweep_config_hash(&more_jobs, &trace, &map));
        let other_trace = Trace::from_ids([1, 2, 3]);
        assert_ne!(base, sweep_config_hash(&jobs, &other_trace, &map));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (trace, map) = trace_and_map();
        let jobs = vec![SweepJob {
            kind: PolicyKind::ItemLru,
            capacity: 32,
            warmup: 0,
        }];
        let csv = to_csv(&run_sweep(&jobs, &trace, &map, 1));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("policy,capacity"));
        assert!(lines[1].starts_with("item-lru,32,"));
    }
}
