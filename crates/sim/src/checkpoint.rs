//! Checkpoint/resume for long-running analytics.
//!
//! A 500-cell sweep over a multi-hour trace should survive a `SIGKILL`, an
//! OOM kill, or a pre-empted spot instance. This module provides the
//! persistence layer: periodic JSON checkpoints of completed cell results,
//! fingerprinted against the exact run configuration so a resume against
//! different parameters is *refused* rather than silently blended.
//!
//! # Format and invariants
//!
//! A checkpoint is a single JSON document (written atomically: temp file +
//! rename, so a kill can never leave a truncated checkpoint behind):
//!
//! * `version` — [`FORMAT_VERSION`]; mismatches refuse to resume.
//! * `config_hash` — a deterministic 64-bit fingerprint ([`StableHasher`])
//!   of everything that affects cell results: the job list, the trace
//!   contents, and the block map. Thread counts and checkpoint cadence are
//!   deliberately *excluded* — they cannot change results.
//! * `total_cells` — the job-list length, double-checking the hash.
//! * completed cells with their full results, and failed cells with their
//!   rendered panic payloads.
//!
//! Resume re-runs exactly the cells that are missing **or failed** in the
//! checkpoint; completed cells are served from the checkpoint verbatim.
//! Because every cell is a pure function of `(job, trace, map)`, a resumed
//! run's output is bit-identical to an uninterrupted one — this is tested
//! end-to-end (including a real `SIGKILL`) in the CLI integration tests.

use crate::stats::SimStats;
use gc_types::{BlockMap, GcError, Trace};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint format version; bumped on incompatible changes.
pub const FORMAT_VERSION: u32 = 1;

/// A deterministic, platform-independent 64-bit fingerprint builder
/// (FNV-1a over a canonical byte rendering).
///
/// `std::hash` deliberately does not promise stability across runs or
/// platforms, and checkpoint fingerprints must survive both — so this is
/// hand-rolled and frozen.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorb a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorb a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The fingerprint of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprint a trace: name, length, and every request id.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&trace.name);
    h.write_usize(trace.len());
    for id in trace.iter() {
        h.write_u64(id.0);
    }
    h.finish()
}

/// Fingerprint a block map via its canonical JSON rendering (strided maps
/// hash their stride; explicit maps hash the full partition).
pub fn map_fingerprint(map: &BlockMap) -> u64 {
    let mut h = StableHasher::new();
    let rendered = serde_json::to_string(map).expect("block map serialization cannot fail");
    h.write_str(&rendered);
    h.write_usize(map.max_block_size());
    h.finish()
}

/// The recorded outcome of one sweep cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SweepCellOutcome {
    /// The cell completed; its full result is preserved.
    Done {
        /// Policy display name (as produced by the live run).
        policy_name: String,
        /// The cell's aggregate statistics.
        stats: SimStats,
    },
    /// The cell panicked; resume will re-run it.
    Failed {
        /// Rendered panic payload.
        reason: String,
    },
}

/// One checkpointed sweep cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRecord {
    /// Index of the cell in the job list.
    pub index: usize,
    /// What happened to it.
    pub outcome: SweepCellOutcome,
}

/// A sweep checkpoint: the persistent state of a (possibly interrupted)
/// [`run_sweep_checked`](crate::sweep::run_sweep_checked) invocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// [`FORMAT_VERSION`] at write time.
    pub version: u32,
    /// Fingerprint of (jobs, trace, map); see the module docs.
    pub config_hash: u64,
    /// Length of the job list.
    pub total_cells: usize,
    /// Recorded cells, kept sorted by index on write.
    pub cells: Vec<SweepCellRecord>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for a fresh run.
    pub fn new(config_hash: u64, total_cells: usize) -> Self {
        SweepCheckpoint {
            version: FORMAT_VERSION,
            config_hash,
            total_cells,
            cells: Vec::new(),
        }
    }

    /// Validate this checkpoint against the configuration about to run.
    ///
    /// Refuses (with [`GcError::CheckpointMismatch`] or
    /// [`GcError::InvalidParameter`]) when the format version, the config
    /// fingerprint, or the cell count disagree — resuming would silently
    /// blend results from different experiments.
    pub fn validate(&self, config_hash: u64, total_cells: usize) -> Result<(), GcError> {
        if self.version != FORMAT_VERSION {
            return Err(GcError::InvalidParameter(format!(
                "checkpoint format version {} is not the supported {FORMAT_VERSION}",
                self.version
            )));
        }
        if self.config_hash != config_hash {
            return Err(GcError::CheckpointMismatch {
                expected: config_hash,
                found: self.config_hash,
            });
        }
        if self.total_cells != total_cells {
            return Err(GcError::InvalidParameter(format!(
                "checkpoint holds {} cells but the configuration defines {total_cells}",
                self.total_cells
            )));
        }
        for cell in &self.cells {
            if cell.index >= total_cells {
                return Err(GcError::InvalidParameter(format!(
                    "checkpoint cell index {} out of range 0..{total_cells}",
                    cell.index
                )));
            }
        }
        Ok(())
    }

    /// Indices recorded as `Done` (the ones resume can skip).
    pub fn done_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.cells.iter().filter_map(|c| match c.outcome {
            SweepCellOutcome::Done { .. } => Some(c.index),
            SweepCellOutcome::Failed { .. } => None,
        })
    }
}

/// One checkpointed miss-ratio curve of an MRC bundle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MrcCurveRecord {
    /// Which curve: `0` = item-granular, `1` = block-granular.
    pub index: usize,
    /// Total accesses (denominator of the curve's ratios).
    pub accesses: u64,
    /// `misses[k]` for `k = 0..=max_size`.
    pub misses: Vec<u64>,
}

/// A checkpoint for [`mrc_bundle_checked`](crate::mrc::mrc_bundle_checked):
/// each completed curve is persisted as soon as its pass finishes, so an
/// interrupted bundle re-runs only the missing curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MrcCheckpoint {
    /// [`FORMAT_VERSION`] at write time.
    pub version: u32,
    /// Fingerprint of (trace, map, capacity, mode).
    pub config_hash: u64,
    /// Completed curves, sorted by index.
    pub curves: Vec<MrcCurveRecord>,
}

impl MrcCheckpoint {
    /// An empty checkpoint for a fresh bundle.
    pub fn new(config_hash: u64) -> Self {
        MrcCheckpoint {
            version: FORMAT_VERSION,
            config_hash,
            curves: Vec::new(),
        }
    }

    /// Validate against the configuration about to run (same contract as
    /// [`SweepCheckpoint::validate`]).
    pub fn validate(&self, config_hash: u64) -> Result<(), GcError> {
        if self.version != FORMAT_VERSION {
            return Err(GcError::InvalidParameter(format!(
                "checkpoint format version {} is not the supported {FORMAT_VERSION}",
                self.version
            )));
        }
        if self.config_hash != config_hash {
            return Err(GcError::CheckpointMismatch {
                expected: config_hash,
                found: self.config_hash,
            });
        }
        Ok(())
    }
}

/// Serialize `value` as pretty JSON to `path`, atomically.
///
/// The document is written to a `.tmp` sibling and renamed into place, so
/// a kill mid-write leaves either the previous checkpoint or the new one —
/// never a truncated file.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), GcError> {
    let rendered = serde_json::to_string_pretty(value)
        .map_err(|e| GcError::InvalidParameter(format!("checkpoint serialization: {e}")))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, rendered)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a JSON document written by [`save_json`].
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, GcError> {
    let raw = std::fs::read_to_string(path)?;
    serde_json::from_str(&raw).map_err(|e| GcError::Parse {
        line: e.line().max(1),
        column: Some(e.column().max(1)),
        byte_offset: None,
        reason: gc_types::ParseReason::Json {
            message: e.to_string(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_types::ItemId;

    /// The offline build stubs out serde_json (typecheck-only); JSON
    /// round-trip assertions are meaningless there. Mirrors the guard used
    /// by the seed's own serde tests' environment.
    fn serde_json_is_functional() -> bool {
        serde_json::to_string(&7u32)
            .map(|s| s == "7")
            .unwrap_or(false)
    }

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("hello");
        a.write_u64(42);
        let mut b = StableHasher::new();
        b.write_str("hello");
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_str("hello");
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
        // Length prefixing keeps concatenations apart.
        let mut d = StableHasher::new();
        d.write_str("ab");
        d.write_str("c");
        let mut e = StableHasher::new();
        e.write_str("a");
        e.write_str("bc");
        assert_ne!(d.finish(), e.finish());
    }

    #[test]
    fn trace_fingerprint_tracks_content() {
        let a = Trace::from_ids([1, 2, 3]).named("x");
        let b = Trace::from_ids([1, 2, 3]).named("x");
        let c = Trace::from_ids([1, 2, 4]).named("x");
        let d = Trace::from_ids([1, 2, 3]).named("y");
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&c));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&d));
    }

    #[test]
    fn map_fingerprint_tracks_stride() {
        if !serde_json_is_functional() {
            eprintln!("skipping: serde_json stubbed out offline");
            return;
        }
        assert_eq!(
            map_fingerprint(&BlockMap::strided(8)),
            map_fingerprint(&BlockMap::strided(8))
        );
        assert_ne!(
            map_fingerprint(&BlockMap::strided(8)),
            map_fingerprint(&BlockMap::strided(16))
        );
        let explicit =
            BlockMap::from_groups(vec![vec![ItemId(0), ItemId(1)], vec![ItemId(2)]]).unwrap();
        assert_ne!(
            map_fingerprint(&explicit),
            map_fingerprint(&BlockMap::strided(2))
        );
    }

    #[test]
    fn validate_rejects_mismatches() {
        let ckpt = SweepCheckpoint::new(0xabc, 10);
        assert!(ckpt.validate(0xabc, 10).is_ok());
        assert!(matches!(
            ckpt.validate(0xdef, 10),
            Err(GcError::CheckpointMismatch { .. })
        ));
        assert!(ckpt.validate(0xabc, 11).is_err());
        let mut wrong_version = ckpt.clone();
        wrong_version.version = FORMAT_VERSION + 1;
        assert!(wrong_version.validate(0xabc, 10).is_err());
        let mut out_of_range = ckpt;
        out_of_range.cells.push(SweepCellRecord {
            index: 10,
            outcome: SweepCellOutcome::Failed { reason: "x".into() },
        });
        assert!(out_of_range.validate(0xabc, 10).is_err());
    }

    #[test]
    fn done_indices_skip_failed_cells() {
        let mut ckpt = SweepCheckpoint::new(1, 4);
        ckpt.cells.push(SweepCellRecord {
            index: 0,
            outcome: SweepCellOutcome::Done {
                policy_name: "p".into(),
                stats: SimStats::default(),
            },
        });
        ckpt.cells.push(SweepCellRecord {
            index: 2,
            outcome: SweepCellOutcome::Failed {
                reason: "boom".into(),
            },
        });
        assert_eq!(ckpt.done_indices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn save_load_roundtrip_is_atomic() {
        if !serde_json_is_functional() {
            eprintln!("skipping: serde_json stubbed out offline");
            return;
        }
        let dir = std::env::temp_dir().join(format!("gc-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt.json");
        let mut ckpt = SweepCheckpoint::new(0x1234, 3);
        ckpt.cells.push(SweepCellRecord {
            index: 1,
            outcome: SweepCellOutcome::Done {
                policy_name: "ItemLRU(k=8)".into(),
                stats: SimStats {
                    accesses: 10,
                    misses: 4,
                    ..SimStats::default()
                },
            },
        });
        save_json(&ckpt, &path).unwrap();
        // No temp residue after a successful save.
        assert!(!path.with_extension("tmp").exists());
        let back: SweepCheckpoint = load_json(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_file_as_io() {
        let err = load_json::<SweepCheckpoint>(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(err, GcError::Io { .. }), "{err}");
    }
}
