//! The single-pass simulation engine.
//!
//! Besides counting hits and misses, the engine attributes every hit to
//! temporal or spatial locality per §2 of the paper:
//!
//! > In GC Caching, hits can also come from spatial locality, i.e., when an
//! > item `I` is in cache due to an earlier access to a different item in
//! > the same block. (Any hits to item `I` beyond the first are due to
//! > temporal locality, since `I` would have been brought in cache anyway.)
//!
//! Concretely: when a miss co-loads items beyond the requested one, those
//! items become *spatial candidates*. The first hit to a candidate is a
//! spatial hit (and clears the candidacy); hits to non-candidates are
//! temporal. Eviction or re-loading keeps candidacy in sync.
//!
//! ## Hot-path discipline
//!
//! The loop performs no per-access heap allocation: policies report into a
//! single reused [`AccessScratch`], and candidacy lives in a
//! [`SpatialSet`] — a dense bitmap indexed by `ItemId` (with a hash-set
//! spillover for pathologically large ids) instead of a hash set per se.
//! Both structures grow to their high-water mark once and are then reused
//! for the rest of the simulation.

use crate::stats::SimStats;
use gc_policies::GcPolicy;
use gc_types::{AccessKind, AccessScratch, CompiledTrace, FxHashSet, ItemId, Trace};

/// Ids below this bound live in the dense bitmap (`2^26` bits = 8 MiB at
/// the very worst); anything larger spills into a hash set so sparse
/// explicit block maps with huge ids cannot exhaust memory.
const DENSE_LIMIT: u64 = 1 << 26;

/// A set of [`ItemId`]s tuned for the simulator's spatial-candidate
/// tracking: a grow-on-demand bitmap for small ids (the overwhelmingly
/// common case — trace generators and block maps produce dense ids) plus
/// an [`FxHashSet`] overflow for ids at or above 2²⁶.
///
/// Compared to a hash set, membership updates are a shift and a mask with
/// no hashing and no probing, and the bitmap never reallocates once it has
/// covered the largest id seen.
#[derive(Clone, Debug, Default)]
pub struct SpatialSet {
    words: Vec<u64>,
    overflow: FxHashSet<ItemId>,
}

impl SpatialSet {
    /// An empty set.
    pub fn new() -> Self {
        SpatialSet::default()
    }

    /// Add `item` to the set.
    #[inline]
    pub fn insert(&mut self, item: ItemId) {
        let id = item.0;
        if id < DENSE_LIMIT {
            let word = (id / 64) as usize;
            if word >= self.words.len() {
                self.words.resize(word + 1, 0);
            }
            self.words[word] |= 1 << (id % 64);
        } else {
            self.overflow.insert(item);
        }
    }

    /// Remove `item`, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, item: ItemId) -> bool {
        let id = item.0;
        if id < DENSE_LIMIT {
            let word = (id / 64) as usize;
            if word >= self.words.len() {
                return false;
            }
            let mask = 1u64 << (id % 64);
            let present = self.words[word] & mask != 0;
            self.words[word] &= !mask;
            present
        } else {
            self.overflow.remove(&item)
        }
    }

    /// Whether `item` is in the set.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        let id = item.0;
        if id < DENSE_LIMIT {
            let word = (id / 64) as usize;
            word < self.words.len() && self.words[word] & (1 << (id % 64)) != 0
        } else {
            self.overflow.contains(&item)
        }
    }

    /// Empty the set, keeping the bitmap's allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.overflow.clear();
    }
}

/// Run `policy` over the whole `trace`, returning aggregate statistics.
///
/// ```
/// use gc_policies::BlockLru;
/// use gc_types::{BlockMap, Trace};
///
/// let mut cache = BlockLru::new(16, BlockMap::strided(4));
/// let stats = gc_sim::simulate(&mut cache, &Trace::from_ids([0, 1, 2, 1]));
/// assert_eq!(stats.misses, 1);
/// assert_eq!(stats.spatial_hits, 2); // first touches of co-loaded 1 and 2
/// assert_eq!(stats.temporal_hits, 1); // the revisit of 1
/// ```
pub fn simulate<P: GcPolicy + ?Sized>(policy: &mut P, trace: &Trace) -> SimStats {
    simulate_with_warmup(policy, trace, 0)
}

/// Run `policy` over `trace`, excluding the first `warmup` requests from
/// the statistics (they still update the cache).
///
/// Use this with the adversarial generators, whose
/// [`warmup_len`](gc_trace::AdversaryReport::warmup_len) prefix fills the
/// cache before the measured rounds begin.
pub fn simulate_with_warmup<P: GcPolicy + ?Sized>(
    policy: &mut P,
    trace: &Trace,
    warmup: usize,
) -> SimStats {
    run_loop(policy, trace.iter(), warmup)
}

/// Run `policy` over a [`CompiledTrace`], returning statistics identical
/// to [`simulate`] on the source trace when the policy was built against
/// [`CompiledTrace::map`].
///
/// The loop streams the flat dense-ID access array: every id is small, so
/// the spatial-candidate set stays in its bitmap fast path, and the policy
/// (built against the dense map) resolves membership with `Vec` indexing
/// instead of hash probes.
pub fn simulate_compiled<P: GcPolicy + ?Sized>(
    policy: &mut P,
    compiled: &CompiledTrace,
) -> SimStats {
    simulate_compiled_with_warmup(policy, compiled, 0)
}

/// [`simulate_compiled`] excluding the first `warmup` requests from the
/// statistics (they still update the cache).
pub fn simulate_compiled_with_warmup<P: GcPolicy + ?Sized>(
    policy: &mut P,
    compiled: &CompiledTrace,
    warmup: usize,
) -> SimStats {
    run_loop(policy, compiled.iter_items(), warmup)
}

// The shared simulation loop; `items` is either the sparse request stream
// or the compiled dense one. Per-access work must stay allocation- and
// hash-free on the compiled path.
// lint: hot-path
fn run_loop<P: GcPolicy + ?Sized>(
    policy: &mut P,
    items: impl Iterator<Item = ItemId>,
    warmup: usize,
) -> SimStats {
    let mut stats = SimStats::default();
    let mut scratch = AccessScratch::new();
    // Items resident only by virtue of a co-load, not yet re-requested.
    let mut spatial_candidates = SpatialSet::new();

    for (idx, item) in items.enumerate() {
        let counted = idx >= warmup;
        match policy.access_into(item, &mut scratch) {
            AccessKind::Hit => {
                let spatial = spatial_candidates.remove(item);
                if counted {
                    stats.accesses += 1;
                    if spatial {
                        stats.spatial_hits += 1;
                    } else {
                        stats.temporal_hits += 1;
                    }
                }
            }
            AccessKind::Miss => {
                debug_assert!(scratch.loaded.contains(&item), "miss must load the request");
                for &z in &scratch.loaded {
                    if z != item {
                        spatial_candidates.insert(z);
                    }
                }
                // The requested item is resident on its own merits now.
                spatial_candidates.remove(item);
                for &z in &scratch.evicted {
                    spatial_candidates.remove(z);
                }
                if counted {
                    stats.accesses += 1;
                    stats.misses += 1;
                    stats.items_loaded += scratch.loaded.len() as u64;
                    stats.items_evicted += scratch.evicted.len() as u64;
                }
            }
        }
        stats.peak_len = stats.peak_len.max(policy.len());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, Iblp, ItemLru};
    use gc_types::BlockMap;

    #[test]
    fn item_lru_on_repeat_trace() {
        // LRU of capacity 2 over [1, 2, 1, 2, 3, 1]:
        //   1 miss, 2 miss, 1 hit, 2 hit   (cache {1, 2}, MRU 2)
        //   3 miss evicting 1, 1 miss evicting 2.
        let trace = Trace::from_ids([1, 2, 1, 2, 3, 1]);
        let mut lru = ItemLru::new(2);
        let s = simulate(&mut lru, &trace);
        assert_eq!(s.accesses, 6);
        assert_eq!(s.misses, 4);
        assert_eq!(s.temporal_hits, 2, "the revisits of 1 and 2");
        assert_eq!(s.spatial_hits, 0, "item caches never co-load");
        assert_eq!(s.items_loaded, s.misses);
    }

    #[test]
    fn spatial_attribution_block_cache() {
        // B=4 streaming: each block's first access misses, the next three
        // hit spatially — and a revisit within the block is temporal.
        let map = BlockMap::strided(4);
        let mut c = BlockLru::new(8, map);
        let trace = Trace::from_ids([0, 1, 2, 1, 3]);
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 1);
        assert_eq!(s.spatial_hits, 3, "first touches of 1, 2, 3");
        assert_eq!(s.temporal_hits, 1, "revisit of 1");
    }

    #[test]
    fn candidate_cleared_on_eviction() {
        // Co-loaded item evicted before ever being touched, then reloaded
        // and touched: still a spatial hit (it was co-loaded again).
        let map = BlockMap::strided(2);
        let mut c = BlockLru::new(2, map); // 1 block slot
        let trace = Trace::from_ids([0, 2, 0, 1]);
        // 0 loads block0 {0,1}; 2 loads block1 evicting block0 (candidate 1
        // cleared); 0 reloads block0 (1 candidate again); 1 hits spatially.
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 3);
        assert_eq!(s.spatial_hits, 1);
    }

    #[test]
    fn warmup_excluded_from_counts() {
        let trace = Trace::from_ids([1, 2, 3, 1, 2, 3]);
        let mut lru = ItemLru::new(4);
        let s = simulate_with_warmup(&mut lru, &trace, 3);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 0, "warm cache hits everything after warmup");
        assert_eq!(s.temporal_hits, 3);
    }

    #[test]
    fn iblp_spatial_and_temporal_mix() {
        let map = BlockMap::strided(4);
        let mut c = Iblp::new(4, 8, map);
        // Block 0 streams (spatial), then item 0 re-hits (temporal).
        let trace = Trace::from_ids([0, 1, 2, 3, 0, 0]);
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 1);
        assert_eq!(s.spatial_hits, 3);
        assert_eq!(s.temporal_hits, 2);
        assert!(s.peak_len > 0);
    }

    #[test]
    fn fault_rate_matches_eviction_free_run() {
        let trace = Trace::from_ids(0..100u64);
        let mut lru = ItemLru::new(128);
        let s = simulate(&mut lru, &trace);
        assert_eq!(s.misses, 100);
        assert!((s.fault_rate() - 1.0).abs() < 1e-12);
        assert_eq!(s.items_evicted, 0);
        assert_eq!(s.peak_len, 100);
    }

    #[test]
    fn compiled_simulation_matches_sparse_bit_for_bit() {
        let map = BlockMap::strided(4);
        let mut x = 77u64;
        let trace = Trace::from_ids((0..3000).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) % 5000
        }));
        let ct = CompiledTrace::compile(&trace, &map).unwrap();
        let mut sparse = Iblp::new(8, 16, map);
        let mut dense = Iblp::new(8, 16, ct.map().clone());
        assert_eq!(
            simulate_with_warmup(&mut sparse, &trace, 100),
            simulate_compiled_with_warmup(&mut dense, &ct, 100)
        );
    }

    #[test]
    fn boxed_policies_work() {
        let map = BlockMap::strided(4);
        let mut boxed: Box<dyn GcPolicy> = Box::new(BlockLru::new(8, map));
        let s = simulate(&mut boxed, &Trace::from_ids([0, 1, 4, 5]));
        assert_eq!(s.misses, 2);
        assert_eq!(s.spatial_hits, 2);
    }

    #[test]
    fn spatial_set_dense_and_overflow() {
        let mut s = SpatialSet::new();
        let small = ItemId(1000);
        let edge = ItemId(DENSE_LIMIT - 1);
        let huge = ItemId(u64::MAX - 3);
        for id in [small, edge, huge] {
            assert!(!s.contains(id));
            s.insert(id);
            assert!(s.contains(id));
        }
        assert!(s.remove(huge));
        assert!(!s.remove(huge), "double remove reports absence");
        assert!(s.remove(edge));
        assert!(!s.contains(edge));
        assert!(s.contains(small));
        s.clear();
        assert!(!s.contains(small));
    }

    #[test]
    fn spatial_set_remove_beyond_bitmap_is_false() {
        let mut s = SpatialSet::new();
        s.insert(ItemId(3));
        // An id whose word the bitmap never grew to must report absent
        // without growing the bitmap.
        assert!(!s.remove(ItemId(1_000_000)));
        assert!(s.contains(ItemId(3)));
    }
}
