//! The single-pass simulation engine.
//!
//! Besides counting hits and misses, the engine attributes every hit to
//! temporal or spatial locality per §2 of the paper:
//!
//! > In GC Caching, hits can also come from spatial locality, i.e., when an
//! > item `I` is in cache due to an earlier access to a different item in
//! > the same block. (Any hits to item `I` beyond the first are due to
//! > temporal locality, since `I` would have been brought in cache anyway.)
//!
//! Concretely: when a miss co-loads items beyond the requested one, those
//! items become *spatial candidates*. The first hit to a candidate is a
//! spatial hit (and clears the candidacy); hits to non-candidates are
//! temporal. Eviction or re-loading keeps candidacy in sync.

use crate::stats::SimStats;
use gc_policies::GcPolicy;
use gc_types::{AccessResult, FxHashSet, ItemId, Trace};

/// Run `policy` over the whole `trace`, returning aggregate statistics.
///
/// ```
/// use gc_policies::BlockLru;
/// use gc_types::{BlockMap, Trace};
///
/// let mut cache = BlockLru::new(16, BlockMap::strided(4));
/// let stats = gc_sim::simulate(&mut cache, &Trace::from_ids([0, 1, 2, 1]));
/// assert_eq!(stats.misses, 1);
/// assert_eq!(stats.spatial_hits, 2); // first touches of co-loaded 1 and 2
/// assert_eq!(stats.temporal_hits, 1); // the revisit of 1
/// ```
pub fn simulate<P: GcPolicy + ?Sized>(policy: &mut P, trace: &Trace) -> SimStats {
    simulate_with_warmup(policy, trace, 0)
}

/// Run `policy` over `trace`, excluding the first `warmup` requests from
/// the statistics (they still update the cache).
///
/// Use this with the adversarial generators, whose
/// [`warmup_len`](gc_trace::AdversaryReport::warmup_len) prefix fills the
/// cache before the measured rounds begin.
pub fn simulate_with_warmup<P: GcPolicy + ?Sized>(
    policy: &mut P,
    trace: &Trace,
    warmup: usize,
) -> SimStats {
    let mut stats = SimStats::default();
    // Items resident only by virtue of a co-load, not yet re-requested.
    let mut spatial_candidates: FxHashSet<ItemId> = FxHashSet::default();

    for (idx, item) in trace.iter().enumerate() {
        let counted = idx >= warmup;
        match policy.access(item) {
            AccessResult::Hit => {
                let spatial = spatial_candidates.remove(&item);
                if counted {
                    stats.accesses += 1;
                    if spatial {
                        stats.spatial_hits += 1;
                    } else {
                        stats.temporal_hits += 1;
                    }
                }
            }
            AccessResult::Miss { loaded, evicted } => {
                debug_assert!(loaded.contains(&item), "miss must load the request");
                for &z in &loaded {
                    if z != item {
                        spatial_candidates.insert(z);
                    }
                }
                // The requested item is resident on its own merits now.
                spatial_candidates.remove(&item);
                for z in &evicted {
                    spatial_candidates.remove(z);
                }
                if counted {
                    stats.accesses += 1;
                    stats.misses += 1;
                    stats.items_loaded += loaded.len() as u64;
                    stats.items_evicted += evicted.len() as u64;
                }
            }
        }
        stats.peak_len = stats.peak_len.max(policy.len());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, Iblp, ItemLru};
    use gc_types::BlockMap;

    #[test]
    fn item_lru_on_repeat_trace() {
        let trace = Trace::from_ids([1, 2, 1, 2, 3, 1]);
        let mut lru = ItemLru::new(2);
        let s = simulate(&mut lru, &trace);
        assert_eq!(s.accesses, 6);
        // Misses: 1, 2, 3, then 1 again (evicted by 3? capacity 2: after
        // [1,2,1,2] cache = {1,2}; 3 evicts LRU=1... order: access 1,2 →
        // {2,1}? Let's trust the policy tests; here check totals add up.
        assert_eq!(s.hits() + s.misses, 6);
        assert_eq!(s.spatial_hits, 0, "item caches never co-load");
        assert_eq!(s.items_loaded, s.misses);
    }

    #[test]
    fn spatial_attribution_block_cache() {
        // B=4 streaming: each block's first access misses, the next three
        // hit spatially — and a revisit within the block is temporal.
        let map = BlockMap::strided(4);
        let mut c = BlockLru::new(8, map);
        let trace = Trace::from_ids([0, 1, 2, 1, 3]);
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 1);
        assert_eq!(s.spatial_hits, 3, "first touches of 1, 2, 3");
        assert_eq!(s.temporal_hits, 1, "revisit of 1");
    }

    #[test]
    fn candidate_cleared_on_eviction() {
        // Co-loaded item evicted before ever being touched, then reloaded
        // and touched: still a spatial hit (it was co-loaded again).
        let map = BlockMap::strided(2);
        let mut c = BlockLru::new(2, map); // 1 block slot
        let trace = Trace::from_ids([0, 2, 0, 1]);
        // 0 loads block0 {0,1}; 2 loads block1 evicting block0 (candidate 1
        // cleared); 0 reloads block0 (1 candidate again); 1 hits spatially.
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 3);
        assert_eq!(s.spatial_hits, 1);
    }

    #[test]
    fn warmup_excluded_from_counts() {
        let trace = Trace::from_ids([1, 2, 3, 1, 2, 3]);
        let mut lru = ItemLru::new(4);
        let s = simulate_with_warmup(&mut lru, &trace, 3);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 0, "warm cache hits everything after warmup");
        assert_eq!(s.temporal_hits, 3);
    }

    #[test]
    fn iblp_spatial_and_temporal_mix() {
        let map = BlockMap::strided(4);
        let mut c = Iblp::new(4, 8, map);
        // Block 0 streams (spatial), then item 0 re-hits (temporal).
        let trace = Trace::from_ids([0, 1, 2, 3, 0, 0]);
        let s = simulate(&mut c, &trace);
        assert_eq!(s.misses, 1);
        assert_eq!(s.spatial_hits, 3);
        assert_eq!(s.temporal_hits, 2);
        assert!(s.peak_len > 0);
    }

    #[test]
    fn fault_rate_matches_eviction_free_run() {
        let trace = Trace::from_ids(0..100u64);
        let mut lru = ItemLru::new(128);
        let s = simulate(&mut lru, &trace);
        assert_eq!(s.misses, 100);
        assert!((s.fault_rate() - 1.0).abs() < 1e-12);
        assert_eq!(s.items_evicted, 0);
        assert_eq!(s.peak_len, 100);
    }

    #[test]
    fn boxed_policies_work() {
        let map = BlockMap::strided(4);
        let mut boxed: Box<dyn GcPolicy> = Box::new(BlockLru::new(8, map));
        let s = simulate(&mut boxed, &Trace::from_ids([0, 1, 4, 5]));
        assert_eq!(s.misses, 2);
        assert_eq!(s.spatial_hits, 2);
    }
}
