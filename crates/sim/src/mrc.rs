//! Miss-ratio curves (MRC) via Mattson's stack algorithm.
//!
//! LRU has the *inclusion property*: the content of an LRU cache of size
//! `k` is a prefix of the content of any larger LRU cache. Mattson et al.
//! (1970) exploit this to compute, in a single pass, the LRU miss count for
//! **every** cache size at once: each access's *reuse (stack) distance* is
//! the number of distinct ids touched since its last access; the access
//! hits in exactly the caches of size greater than that distance.
//!
//! This module computes
//!
//! * item-granular MRCs (classic),
//! * block-granular MRCs (the same algorithm over block ids — the behavior
//!   of a Block Cache with `k/B` slots), and
//! * the IBLP *layer grid*: an exhaustive profile of balanced-vs-skewed
//!   splits obtained from the two curves, used by the `mrc` CLI command
//!   and the `mrc_explorer` example to pick layer sizes offline.
//!
//! Stack distances are computed with a Fenwick (binary indexed) tree over
//! access positions — `O(T log T)` total, the standard technique.

use gc_types::{BlockMap, FxHashMap, Trace};

/// A miss-ratio curve: `misses[k]` is the number of LRU misses at cache
/// size `k` (index 0 holds the trace length: every access misses in a
/// size-0 cache).
#[derive(Clone, Debug)]
pub struct MissRatioCurve {
    /// Total accesses (denominator of every ratio).
    pub accesses: u64,
    /// `misses[k]` for `k = 0..=max_size`.
    pub misses: Vec<u64>,
}

impl MissRatioCurve {
    /// Miss ratio at size `k` (clamped to the computed range).
    pub fn miss_ratio(&self, k: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let k = k.min(self.misses.len() - 1);
        self.misses[k] as f64 / self.accesses as f64
    }

    /// Largest computed size.
    pub fn max_size(&self) -> usize {
        self.misses.len() - 1
    }

    /// The smallest cache size achieving a miss ratio ≤ `target`, if any.
    pub fn size_for_ratio(&self, target: f64) -> Option<usize> {
        (0..self.misses.len()).find(|&k| self.miss_ratio(k) <= target)
    }
}

/// Fenwick tree for prefix sums over access positions.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut total = 0;
        while i > 0 {
            total += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        total
    }
}

fn mrc_over_ids(ids: impl Iterator<Item = u64>, len: usize, max_size: usize) -> MissRatioCurve {
    // distance_histogram[d] = accesses with stack distance exactly d
    // (d = number of distinct ids since last access); cold misses go to
    // the "infinite" bucket.
    let mut hist = vec![0u64; max_size + 1];
    let mut infinite = 0u64;
    let mut fenwick = Fenwick::new(len);
    let mut last_pos: FxHashMap<u64, usize> = FxHashMap::default();

    for (pos, id) in ids.enumerate() {
        match last_pos.insert(id, pos) {
            None => {
                infinite += 1;
            }
            Some(prev) => {
                // Distinct ids touched strictly between prev and pos:
                // marked positions in (prev, pos).
                let between = fenwick.prefix(pos) - fenwick.prefix(prev);
                let distance = between as usize;
                if distance < hist.len() {
                    hist[distance] += 1;
                } else {
                    infinite += 1; // misses at every size we report
                }
                fenwick.add(prev, -1);
            }
        }
        fenwick.add(pos, 1);
    }

    // misses[k] = cold + accesses with stack distance ≥ k.
    // An access with distance d hits iff cache size > d.
    let mut misses = vec![0u64; max_size + 1];
    let mut tail: u64 = infinite;
    for k in (0..=max_size).rev() {
        // distance ≥ k means buckets k..; accumulate from the top.
        tail += hist[k];
        misses[k] = tail;
        // note: misses[k] currently counts distance ≥ k, which is exactly
        // the misses of a size-k cache (hit needs distance ≤ k−1).
    }
    MissRatioCurve {
        accesses: len as u64,
        misses,
    }
}

/// Item-granular LRU miss counts for every cache size `0..=max_size`, in
/// one `O(T log T)` pass.
///
/// ```
/// use gc_sim::item_mrc;
/// use gc_types::Trace;
///
/// // A loop over 10 items: any LRU of size ≥ 10 only takes cold misses.
/// let trace = Trace::from_ids((0..1000u64).map(|i| i % 10));
/// let curve = item_mrc(&trace, 16);
/// assert_eq!(curve.misses[10], 10);
/// assert_eq!(curve.misses[9], 1000); // LRU thrashes below the loop size
/// ```
pub fn item_mrc(trace: &Trace, max_size: usize) -> MissRatioCurve {
    mrc_over_ids(trace.iter().map(|i| i.0), trace.len(), max_size)
}

/// Block-granular LRU miss counts for every *block-slot* count
/// `0..=max_slots`: the behavior of a [`BlockLru`](gc_policies::BlockLru)
/// with that many whole-block slots (capacity `slots × B`).
///
/// [`BlockLru`](gc_policies::BlockLru): ../gc_policies/struct.BlockLru.html
pub fn block_mrc(trace: &Trace, map: &BlockMap, max_slots: usize) -> MissRatioCurve {
    mrc_over_ids(
        trace.iter().map(|i| map.block_of(i).0),
        trace.len(),
        max_slots,
    )
}

/// One cell of the IBLP split grid.
#[derive(Clone, Debug)]
pub struct SplitCell {
    /// Item-layer size in lines.
    pub item_lines: usize,
    /// Block-layer size in lines.
    pub block_lines: usize,
    /// Estimated IBLP misses with this split: `min(item_misses(i),
    /// block_misses(b/B))`. An access misses only if both layers miss, so
    /// this is usually an over-estimate — but IBLP's block layer sees only
    /// the item layer's *misses*, and that filtering can reorder the block
    /// LRU relative to the stand-alone curve, so it is an estimate, not a
    /// strict bound (off-by-a-few is possible, in either direction).
    pub miss_estimate: u64,
}

/// Profile every split of `capacity` lines (in steps of `B`) using the two
/// MRCs — a fast offline guide for choosing the partition without
/// simulating each split (the simulator then refines the shortlist).
pub fn iblp_split_grid(trace: &Trace, map: &BlockMap, capacity: usize) -> Vec<SplitCell> {
    let b = map.max_block_size();
    assert!(capacity > b, "capacity must exceed one block");
    let item_curve = item_mrc(trace, capacity);
    let block_curve = block_mrc(trace, map, capacity / b);
    let mut grid = Vec::new();
    let mut block_lines = b;
    while block_lines < capacity {
        let item_lines = capacity - block_lines;
        let cell = SplitCell {
            item_lines,
            block_lines,
            miss_estimate: item_curve.misses[item_lines.min(item_curve.max_size())]
                .min(block_curve.misses[(block_lines / b).min(block_curve.max_size())]),
        };
        grid.push(cell);
        block_lines += b;
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, ItemLru};

    fn simulate_lru_misses(trace: &Trace, k: usize) -> u64 {
        let mut lru = ItemLru::new(k);
        crate::engine::simulate(&mut lru, trace).misses
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let mut x = 9u64;
        let ids: Vec<u64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 300
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let curve = item_mrc(&trace, 256);
        for k in [1usize, 2, 7, 32, 100, 256] {
            assert_eq!(
                curve.misses[k],
                simulate_lru_misses(&trace, k),
                "size {k} diverges"
            );
        }
    }

    #[test]
    fn block_curve_matches_block_lru() {
        let mut x = 3u64;
        let ids: Vec<u64> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x % 256
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(8);
        let curve = block_mrc(&trace, &map, 16);
        for slots in [1usize, 2, 4, 8, 16] {
            let mut cache = BlockLru::new(slots * 8, map.clone());
            let misses = crate::engine::simulate(&mut cache, &trace).misses;
            assert_eq!(curve.misses[slots], misses, "slots {slots}");
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let trace = Trace::from_ids((0..2000u64).map(|i| i * 7919 % 500));
        let curve = item_mrc(&trace, 400);
        assert!(curve.misses.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn size_zero_misses_everything() {
        let trace = Trace::from_ids([1, 1, 1]);
        let curve = item_mrc(&trace, 4);
        assert_eq!(curve.misses[0], 3);
        assert_eq!(curve.misses[1], 1);
        assert!((curve.miss_ratio(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn size_for_ratio_finds_knee() {
        // Loop over 10 items: size 10 gets ratio → 10/1000, size 9 → 1.
        let trace = Trace::from_ids((0..1000u64).map(|i| i % 10));
        let curve = item_mrc(&trace, 16);
        assert_eq!(curve.size_for_ratio(0.05), Some(10));
        assert_eq!(curve.size_for_ratio(0.0), None);
    }

    #[test]
    fn empty_trace() {
        let curve = item_mrc(&Trace::new(), 8);
        assert_eq!(curve.accesses, 0);
        assert_eq!(curve.miss_ratio(4), 0.0);
    }

    #[test]
    fn split_grid_estimates_track_real_iblp() {
        use gc_policies::Iblp;
        let mut x = 31u64;
        let ids: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                // Mix: hot sparse items + streams.
                if x % 3 == 0 {
                    (x % 64) * 8
                } else {
                    4096 + x % 2048
                }
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(8);
        let capacity = 256;
        for cell in iblp_split_grid(&trace, &map, capacity) {
            let mut iblp = Iblp::new(cell.item_lines, cell.block_lines, map.clone());
            let actual = crate::engine::simulate(&mut iblp, &trace).misses;
            // The estimate must be close from above: IBLP can only beat a
            // single layer meaningfully, and filtering effects are tiny.
            assert!(
                actual as f64 <= cell.miss_estimate as f64 * 1.05 + 8.0,
                "split ({}, {}): actual {actual} far above estimate {}",
                cell.item_lines,
                cell.block_lines,
                cell.miss_estimate
            );
        }
    }

    #[test]
    fn long_distance_beyond_max_counts_as_miss() {
        // Reuse distance 5 with max_size 3: must count as a miss at k ≤ 3.
        let trace = Trace::from_ids([1, 2, 3, 4, 5, 6, 1]);
        let curve = item_mrc(&trace, 3);
        assert_eq!(curve.misses[3], 7, "all cold + the far reuse");
    }
}
