//! Miss-ratio curves (MRC) via Mattson's stack algorithm.
//!
//! LRU has the *inclusion property*: the content of an LRU cache of size
//! `k` is a prefix of the content of any larger LRU cache. Mattson et al.
//! (1970) exploit this to compute, in a single pass, the LRU miss count for
//! **every** cache size at once: each access's *reuse (stack) distance* is
//! the number of distinct ids touched since its last access; the access
//! hits in exactly the caches of size greater than that distance.
//!
//! This module computes
//!
//! * item-granular MRCs (classic),
//! * block-granular MRCs (the same algorithm over block ids — the behavior
//!   of a Block Cache with `k/B` slots), and
//! * the IBLP *layer grid*: an exhaustive profile of balanced-vs-skewed
//!   splits obtained from the two curves, used by the `mrc` CLI command
//!   and the `mrc_explorer` example to pick layer sizes offline.
//!
//! Stack distances are computed with a Fenwick (binary indexed) tree over
//! access positions — `O(T log T)` total, the standard technique.

use crate::checkpoint::{self, MrcCheckpoint, MrcCurveRecord, StableHasher, FORMAT_VERSION};
use crate::pool::{self, JobError, PoolOptions};
use crate::shards::{sampled_block_mrc, sampled_item_mrc, SamplerConfig};
use gc_types::{BlockMap, CompiledTrace, FxHashMap, GcError, Trace};
use parking_lot::Mutex;
use std::path::Path;

/// A miss-ratio curve: `misses[k]` is the number of LRU misses at cache
/// size `k` (index 0 holds the trace length: every access misses in a
/// size-0 cache).
#[derive(Clone, Debug)]
pub struct MissRatioCurve {
    /// Total accesses (denominator of every ratio).
    pub accesses: u64,
    /// `misses[k]` for `k = 0..=max_size`.
    pub misses: Vec<u64>,
}

impl MissRatioCurve {
    /// Miss ratio at size `k` (clamped to the computed range).
    pub fn miss_ratio(&self, k: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let k = k.min(self.misses.len() - 1);
        self.misses[k] as f64 / self.accesses as f64
    }

    /// Largest computed size.
    pub fn max_size(&self) -> usize {
        self.misses.len() - 1
    }

    /// The smallest cache size achieving a miss ratio ≤ `target`, if any.
    ///
    /// Binary search: LRU curves are monotone non-increasing in size (the
    /// inclusion property), so the sizes with ratio above `target` form a
    /// prefix and `partition_point` finds its end in `O(log n)` — the
    /// curves this is called on can span millions of sizes.
    pub fn size_for_ratio(&self, target: f64) -> Option<usize> {
        if target.is_nan() {
            // `partition_point` would see every `ratio > NaN` comparison
            // as false and report size 0; no size meets a NaN target.
            return None;
        }
        debug_assert!(
            self.misses.windows(2).all(|w| w[1] <= w[0]),
            "miss curve must be monotone non-increasing for binary search"
        );
        let idx = self.misses.partition_point(|&m| self.ratio_of(m) > target);
        (idx < self.misses.len()).then_some(idx)
    }

    #[inline]
    fn ratio_of(&self, misses: u64) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            misses as f64 / self.accesses as f64
        }
    }
}

/// Fenwick tree for prefix sums over access positions.
///
/// Counters are `u32` to halve the memory footprint over the obvious
/// `u64` — each internal node counts marked positions in its subrange, so
/// values are bounded by the trace length, which [`Fenwick::new`] caps at
/// `u32::MAX`. Shared with the sampled estimator in
/// [`shards`](crate::shards).
pub(crate) struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// A tree over positions `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n ≥ u32::MAX`: node counts are `u32`, so longer traces
    /// would silently wrap. (A 4 Gi-request trace should be windowed or
    /// sampled before it reaches a Mattson pass anyway.)
    pub(crate) fn new(n: usize) -> Self {
        assert!(
            (n as u128) < u32::MAX as u128,
            "trace length {n} exceeds the u32 Fenwick counter range"
        );
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    pub(crate) fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            // Compute in i64 so the intermediate never wraps even if a
            // counter is near u32::MAX; debug builds verify the result
            // round-trips (no underflow below 0, no overflow past u32).
            let updated = self.tree[i] as i64 + delta as i64;
            debug_assert!(
                (0..=u32::MAX as i64).contains(&updated),
                "Fenwick node {i} out of u32 range: {updated}"
            );
            self.tree[i] = updated as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    pub(crate) fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut total = 0;
        while i > 0 {
            total += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        total
    }
}

fn mrc_over_ids(ids: impl Iterator<Item = u64>, len: usize, max_size: usize) -> MissRatioCurve {
    // distance_histogram[d] = accesses with stack distance exactly d
    // (d = number of distinct ids since last access); cold misses go to
    // the "infinite" bucket.
    let mut hist = vec![0u64; max_size + 1];
    let mut infinite = 0u64;
    let mut fenwick = Fenwick::new(len);
    let mut last_pos: FxHashMap<u64, usize> = FxHashMap::default();

    for (pos, id) in ids.enumerate() {
        match last_pos.insert(id, pos) {
            None => {
                infinite += 1;
            }
            Some(prev) => {
                // Distinct ids touched strictly between prev and pos:
                // marked positions in (prev, pos).
                let between = fenwick.prefix(pos) - fenwick.prefix(prev);
                let distance = between as usize;
                if distance < hist.len() {
                    hist[distance] += 1;
                } else {
                    infinite += 1; // misses at every size we report
                }
                fenwick.add(prev, -1);
            }
        }
        fenwick.add(pos, 1);
    }

    // misses[k] = cold + accesses with stack distance ≥ k.
    // An access with distance d hits iff cache size > d.
    let mut misses = vec![0u64; max_size + 1];
    let mut tail: u64 = infinite;
    for k in (0..=max_size).rev() {
        // distance ≥ k means buckets k..; accumulate from the top.
        tail += hist[k];
        misses[k] = tail;
        // note: misses[k] currently counts distance ≥ k, which is exactly
        // the misses of a size-k cache (hit needs distance ≤ k−1).
    }
    MissRatioCurve {
        accesses: len as u64,
        misses,
    }
}

/// [`mrc_over_ids`] specialized to a dense `0..n_ids` universe: the
/// last-position table becomes a flat `Vec` load instead of a hash probe.
/// The histogram depends only on access *positions*, never on id values or
/// table iteration order, so the curve is bit-identical to the sparse pass
/// over any relabeling of the same trace.
// lint: hot-path
fn mrc_over_dense_ids(
    ids: impl Iterator<Item = u32>,
    len: usize,
    n_ids: usize,
    max_size: usize,
) -> MissRatioCurve {
    const NONE: u32 = u32::MAX;
    let mut hist = vec![0u64; max_size + 1];
    let mut infinite = 0u64;
    let mut fenwick = Fenwick::new(len);
    // `Fenwick::new` guarantees len < u32::MAX, so every position fits
    // below the sentinel.
    let mut last_pos = vec![NONE; n_ids];

    for (pos, id) in ids.enumerate() {
        let slot = &mut last_pos[id as usize];
        let prev = *slot;
        *slot = pos as u32;
        if prev == NONE {
            infinite += 1;
        } else {
            let prev = prev as usize;
            let between = fenwick.prefix(pos) - fenwick.prefix(prev);
            let distance = between as usize;
            if distance < hist.len() {
                hist[distance] += 1;
            } else {
                infinite += 1;
            }
            fenwick.add(prev, -1);
        }
        fenwick.add(pos, 1);
    }

    let mut misses = vec![0u64; max_size + 1];
    let mut tail: u64 = infinite;
    for k in (0..=max_size).rev() {
        tail += hist[k];
        misses[k] = tail;
    }
    MissRatioCurve {
        accesses: len as u64,
        misses,
    }
}

/// Item-granular LRU miss counts for every cache size `0..=max_size`, in
/// one `O(T log T)` pass.
///
/// ```
/// use gc_sim::item_mrc;
/// use gc_types::Trace;
///
/// // A loop over 10 items: any LRU of size ≥ 10 only takes cold misses.
/// let trace = Trace::from_ids((0..1000u64).map(|i| i % 10));
/// let curve = item_mrc(&trace, 16);
/// assert_eq!(curve.misses[10], 10);
/// assert_eq!(curve.misses[9], 1000); // LRU thrashes below the loop size
/// ```
pub fn item_mrc(trace: &Trace, max_size: usize) -> MissRatioCurve {
    mrc_over_ids(trace.iter().map(|i| i.0), trace.len(), max_size)
}

/// [`item_mrc`] over a compiled trace: streams the dense item column and
/// replaces the last-position hash map with a flat `Vec` indexed by dense
/// id. Stack distances are invariant under the (bijective) dense rename,
/// so the curve is bit-identical to [`item_mrc`] on the source trace.
pub fn item_mrc_compiled(compiled: &CompiledTrace, max_size: usize) -> MissRatioCurve {
    mrc_over_dense_ids(
        compiled.accesses().iter().map(|a| a.item),
        compiled.len(),
        compiled.n_items() as usize,
        max_size,
    )
}

/// Block-granular LRU miss counts for every *block-slot* count
/// `0..=max_slots`: the behavior of a [`BlockLru`](gc_policies::BlockLru)
/// with that many whole-block slots (capacity `slots × B`).
///
/// [`BlockLru`](gc_policies::BlockLru): ../gc_policies/struct.BlockLru.html
pub fn block_mrc(trace: &Trace, map: &BlockMap, max_slots: usize) -> MissRatioCurve {
    mrc_over_ids(
        trace.iter().map(|i| map.block_of(i).0),
        trace.len(),
        max_slots,
    )
}

/// [`block_mrc`] over a compiled trace: streams the precomputed per-access
/// block column — no per-access `block_of` divide or hash probe — and uses
/// the dense `Vec` last-position table. Bit-identical to [`block_mrc`] on
/// the source trace and map.
pub fn block_mrc_compiled(compiled: &CompiledTrace, max_slots: usize) -> MissRatioCurve {
    mrc_over_dense_ids(
        compiled.accesses().iter().map(|a| a.block),
        compiled.len(),
        compiled.n_blocks() as usize,
        max_slots,
    )
}

/// One cell of the IBLP split grid.
#[derive(Clone, Debug)]
pub struct SplitCell {
    /// Item-layer size in lines.
    pub item_lines: usize,
    /// Block-layer size in lines.
    pub block_lines: usize,
    /// Estimated IBLP misses with this split: `min(item_misses(i),
    /// block_misses(b/B))`. An access misses only if both layers miss, so
    /// this is usually an over-estimate — but IBLP's block layer sees only
    /// the item layer's *misses*, and that filtering can reorder the block
    /// LRU relative to the stand-alone curve, so it is an estimate, not a
    /// strict bound (off-by-a-few is possible, in either direction).
    pub miss_estimate: u64,
}

/// Profile every split of `capacity` lines (in steps of `B`) using the two
/// MRCs — a fast offline guide for choosing the partition without
/// simulating each split (the simulator then refines the shortlist).
pub fn iblp_split_grid(trace: &Trace, map: &BlockMap, capacity: usize) -> Vec<SplitCell> {
    let b = map.max_block_size();
    assert!(capacity > b, "capacity must exceed one block");
    let item_curve = item_mrc(trace, capacity);
    let block_curve = block_mrc(trace, map, capacity / b);
    split_grid_from_curves(&item_curve, &block_curve, capacity, b)
}

/// Derive the split grid from already-computed curves (exact *or*
/// sampled). `O(capacity / b)` — negligible next to the curve passes, so
/// [`mrc_bundle`] parallelizes the curves and derives the grid serially.
pub fn split_grid_from_curves(
    item_curve: &MissRatioCurve,
    block_curve: &MissRatioCurve,
    capacity: usize,
    b: usize,
) -> Vec<SplitCell> {
    let mut grid = Vec::new();
    let mut block_lines = b;
    while block_lines < capacity {
        let item_lines = capacity - block_lines;
        grid.push(SplitCell {
            item_lines,
            block_lines,
            miss_estimate: item_curve.misses[item_lines.min(item_curve.max_size())]
                .min(block_curve.misses[(block_lines / b).min(block_curve.max_size())]),
        });
        block_lines += b;
    }
    grid
}

/// How to compute the curves of an [`MrcBundle`].
#[derive(Clone, Debug, PartialEq)]
pub enum MrcMode {
    /// Full Mattson passes — bit-exact, `O(T log T)`.
    Exact,
    /// SHARDS sampled passes with the given configuration — near-linear,
    /// approximate. See [`shards`](crate::shards).
    Sampled(SamplerConfig),
}

/// The full MRC analysis for one trace at one capacity budget: both
/// granularities plus the derived IBLP split grid.
#[derive(Clone, Debug)]
pub struct MrcBundle {
    /// Item-granular curve over sizes `0..=capacity`.
    pub item: MissRatioCurve,
    /// Block-granular curve over slot counts `0..=capacity / B`.
    pub block: MissRatioCurve,
    /// Split grid derived from the two curves.
    pub grid: Vec<SplitCell>,
}

impl MrcBundle {
    /// The grid cell with the lowest estimated miss count, if any.
    pub fn best_split(&self) -> Option<&SplitCell> {
        self.grid.iter().min_by_key(|cell| cell.miss_estimate)
    }
}

/// Compute item curve, block curve, and IBLP split grid for `capacity`
/// lines, running the two curve passes on the shared worker
/// [`pool`](crate::pool) (`threads` as in [`run_sweep`](crate::run_sweep):
/// `0` = one per core). In `Exact` mode the curves are bit-identical to
/// [`item_mrc`] / [`block_mrc`] and the grid to [`iblp_split_grid`].
///
/// # Panics
///
/// Panics unless `capacity > B` (a split needs room for both layers).
pub fn mrc_bundle(
    trace: &Trace,
    map: &BlockMap,
    capacity: usize,
    mode: &MrcMode,
    threads: usize,
) -> MrcBundle {
    let b = map.max_block_size();
    assert!(capacity > b, "capacity must exceed one block");
    let mut curves = crate::pool::run_indexed(2, threads, |i| match (i, mode) {
        (0, MrcMode::Exact) => item_mrc(trace, capacity),
        (0, MrcMode::Sampled(cfg)) => sampled_item_mrc(trace, capacity, cfg),
        (_, MrcMode::Exact) => block_mrc(trace, map, capacity / b),
        (_, MrcMode::Sampled(cfg)) => sampled_block_mrc(trace, map, capacity / b, cfg),
    });
    let block = curves.pop().expect("two curve jobs");
    let item = curves.pop().expect("two curve jobs");
    let grid = split_grid_from_curves(&item, &block, capacity, b);
    MrcBundle { item, block, grid }
}

/// [`mrc_bundle`] over a compiled trace. Curves and grid are bit-identical
/// to [`mrc_bundle`] on the source trace in both modes — exact passes are
/// rename-invariant and sampled passes hash the decoded ids — while both
/// curve jobs stream the flat access array.
///
/// # Panics
///
/// Panics unless `capacity > B`, as in [`mrc_bundle`].
pub fn mrc_bundle_compiled(
    compiled: &CompiledTrace,
    capacity: usize,
    mode: &MrcMode,
    threads: usize,
) -> MrcBundle {
    use crate::shards::{sampled_block_mrc_compiled, sampled_item_mrc_compiled};
    let b = compiled.map().max_block_size();
    assert!(capacity > b, "capacity must exceed one block");
    let mut curves = crate::pool::run_indexed(2, threads, |i| match (i, mode) {
        (0, MrcMode::Exact) => item_mrc_compiled(compiled, capacity),
        (0, MrcMode::Sampled(cfg)) => sampled_item_mrc_compiled(compiled, capacity, cfg),
        (_, MrcMode::Exact) => block_mrc_compiled(compiled, capacity / b),
        (_, MrcMode::Sampled(cfg)) => sampled_block_mrc_compiled(compiled, capacity / b, cfg),
    });
    let block = curves.pop().expect("two curve jobs");
    let item = curves.pop().expect("two curve jobs");
    let grid = split_grid_from_curves(&item, &block, capacity, b);
    MrcBundle { item, block, grid }
}

/// Execution options for [`mrc_bundle_checked`].
#[derive(Default)]
pub struct MrcRunConfig<'a> {
    /// Worker threads, as in [`mrc_bundle`] (`0` = one per core).
    pub threads: usize,
    /// Persist each curve here as soon as its pass completes.
    pub checkpoint_path: Option<&'a Path>,
    /// Resume from a previously saved checkpoint; its `config_hash` must
    /// match [`mrc_config_hash`] of this configuration or the run is
    /// refused with [`GcError::CheckpointMismatch`].
    pub resume: Option<MrcCheckpoint>,
}

/// Deterministic fingerprint of everything that affects an MRC bundle's
/// curves: trace contents, block map, capacity, and mode (including the
/// sampler configuration and seed, via its `Debug` rendering).
pub fn mrc_config_hash(trace: &Trace, map: &BlockMap, capacity: usize, mode: &MrcMode) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("mrc-v1");
    h.write_u64(FORMAT_VERSION as u64);
    h.write_usize(capacity);
    h.write_str(&format!("{mode:?}"));
    h.write_u64(checkpoint::trace_fingerprint(trace));
    h.write_u64(checkpoint::map_fingerprint(map));
    h.finish()
}

/// [`mrc_bundle`] with fault isolation and checkpoint/resume.
///
/// A panic in either curve pass is caught and surfaced as
/// [`GcError::CellFailed`] (index `0` = item curve, `1` = block curve)
/// instead of tearing down the process. With a `checkpoint_path`, each
/// curve is persisted the moment its pass finishes; an interrupted bundle
/// resumed from that checkpoint re-runs only the missing curve and returns
/// a bundle bit-identical to an uninterrupted run.
///
/// # Panics
///
/// Panics unless `capacity > B`, as in [`mrc_bundle`].
pub fn mrc_bundle_checked(
    trace: &Trace,
    map: &BlockMap,
    capacity: usize,
    mode: &MrcMode,
    cfg: &MrcRunConfig<'_>,
) -> Result<MrcBundle, GcError> {
    let b = map.max_block_size();
    assert!(capacity > b, "capacity must exceed one block");
    let hash = mrc_config_hash(trace, map, capacity, mode);

    let mut resumed: [Option<MissRatioCurve>; 2] = [None, None];
    let mut sink = MrcCheckpoint::new(hash);
    if let Some(prior) = &cfg.resume {
        prior.validate(hash)?;
        for record in &prior.curves {
            if record.index < 2 {
                resumed[record.index] = Some(MissRatioCurve {
                    accesses: record.accesses,
                    misses: record.misses.clone(),
                });
                sink.curves.push(record.clone());
            }
        }
    }

    let pending: Vec<usize> = (0..2).filter(|&i| resumed[i].is_none()).collect();
    let sink = Mutex::new((sink, None::<GcError>));
    let on_complete = |slot: usize, result: &Result<MissRatioCurve, JobError>| {
        let (Some(path), Ok(curve)) = (cfg.checkpoint_path, result) else {
            return;
        };
        let mut guard = sink.lock();
        let (ckpt, write_error) = &mut *guard;
        ckpt.curves.push(MrcCurveRecord {
            index: pending[slot],
            accesses: curve.accesses,
            misses: curve.misses.clone(),
        });
        ckpt.curves.sort_by_key(|c| c.index);
        if let Err(e) = checkpoint::save_json(&*ckpt, path) {
            write_error.get_or_insert(e);
        }
    };
    let opts = PoolOptions {
        on_complete: Some(&on_complete),
        ..PoolOptions::default()
    };
    let run = pool::run_indexed_opts(pending.len(), cfg.threads, &opts, |slot| {
        match (pending[slot], mode) {
            (0, MrcMode::Exact) => item_mrc(trace, capacity),
            (0, MrcMode::Sampled(sampler)) => sampled_item_mrc(trace, capacity, sampler),
            (_, MrcMode::Exact) => block_mrc(trace, map, capacity / b),
            (_, MrcMode::Sampled(sampler)) => sampled_block_mrc(trace, map, capacity / b, sampler),
        }
    });
    let (_, write_error) = sink.into_inner();
    if let Some(e) = write_error {
        return Err(e);
    }
    for (slot, result) in run.results.into_iter().enumerate() {
        match result {
            Ok(curve) => resumed[pending[slot]] = Some(curve),
            Err(e) => {
                let reason = match &e {
                    JobError::Panicked { payload, .. } => payload.clone(),
                    other => other.to_string(),
                };
                return Err(GcError::CellFailed {
                    index: pending[slot],
                    reason,
                });
            }
        }
    }

    let [Some(item), Some(block)] = resumed else {
        unreachable!("both curves resolved above");
    };
    let grid = split_grid_from_curves(&item, &block, capacity, b);
    Ok(MrcBundle { item, block, grid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_policies::{BlockLru, ItemLru};

    fn simulate_lru_misses(trace: &Trace, k: usize) -> u64 {
        let mut lru = ItemLru::new(k);
        crate::engine::simulate(&mut lru, trace).misses
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let mut x = 9u64;
        let ids: Vec<u64> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 300
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let curve = item_mrc(&trace, 256);
        for k in [1usize, 2, 7, 32, 100, 256] {
            assert_eq!(
                curve.misses[k],
                simulate_lru_misses(&trace, k),
                "size {k} diverges"
            );
        }
    }

    #[test]
    fn block_curve_matches_block_lru() {
        let mut x = 3u64;
        let ids: Vec<u64> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x % 256
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(8);
        let curve = block_mrc(&trace, &map, 16);
        for slots in [1usize, 2, 4, 8, 16] {
            let mut cache = BlockLru::new(slots * 8, map.clone());
            let misses = crate::engine::simulate(&mut cache, &trace).misses;
            assert_eq!(curve.misses[slots], misses, "slots {slots}");
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let trace = Trace::from_ids((0..2000u64).map(|i| i * 7919 % 500));
        let curve = item_mrc(&trace, 400);
        assert!(curve.misses.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn size_zero_misses_everything() {
        let trace = Trace::from_ids([1, 1, 1]);
        let curve = item_mrc(&trace, 4);
        assert_eq!(curve.misses[0], 3);
        assert_eq!(curve.misses[1], 1);
        assert!((curve.miss_ratio(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn size_for_ratio_finds_knee() {
        // Loop over 10 items: size 10 gets ratio → 10/1000, size 9 → 1.
        let trace = Trace::from_ids((0..1000u64).map(|i| i % 10));
        let curve = item_mrc(&trace, 16);
        assert_eq!(curve.size_for_ratio(0.05), Some(10));
        assert_eq!(curve.size_for_ratio(0.0), None);
    }

    #[test]
    fn empty_trace() {
        let curve = item_mrc(&Trace::new(), 8);
        assert_eq!(curve.accesses, 0);
        assert_eq!(curve.miss_ratio(4), 0.0);
    }

    #[test]
    fn split_grid_estimates_track_real_iblp() {
        use gc_policies::Iblp;
        let mut x = 31u64;
        let ids: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                // Mix: hot sparse items + streams.
                if x % 3 == 0 {
                    (x % 64) * 8
                } else {
                    4096 + x % 2048
                }
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(8);
        let capacity = 256;
        for cell in iblp_split_grid(&trace, &map, capacity) {
            let mut iblp = Iblp::new(cell.item_lines, cell.block_lines, map.clone());
            let actual = crate::engine::simulate(&mut iblp, &trace).misses;
            // The estimate must be close from above: IBLP can only beat a
            // single layer meaningfully, and filtering effects are tiny.
            assert!(
                actual as f64 <= cell.miss_estimate as f64 * 1.05 + 8.0,
                "split ({}, {}): actual {actual} far above estimate {}",
                cell.item_lines,
                cell.block_lines,
                cell.miss_estimate
            );
        }
    }

    #[test]
    fn size_for_ratio_nan_and_degenerate_targets() {
        let trace = Trace::from_ids((0..1000u64).map(|i| i % 10));
        let curve = item_mrc(&trace, 16);
        assert_eq!(curve.size_for_ratio(f64::NAN), None);
        assert_eq!(curve.size_for_ratio(1.0), Some(0));
        assert_eq!(curve.size_for_ratio(-0.5), None);
        // Zero accesses: every size trivially meets any non-negative target.
        let empty = item_mrc(&Trace::new(), 8);
        assert_eq!(empty.size_for_ratio(0.0), Some(0));
    }

    #[test]
    fn size_for_ratio_binary_search_matches_linear_scan() {
        let mut x = 5u64;
        let ids: Vec<u64> = (0..8000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x % 700
            })
            .collect();
        let curve = item_mrc(&Trace::from_ids(ids), 700);
        for target in [0.0, 0.01, 0.05, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let linear = (0..curve.misses.len()).find(|&k| curve.miss_ratio(k) <= target);
            assert_eq!(curve.size_for_ratio(target), linear, "target {target}");
        }
    }

    #[test]
    fn exact_bundle_is_bit_identical_to_standalone_passes() {
        let mut x = 11u64;
        let ids: Vec<u64> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                x % 4096
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(16);
        let capacity = 512;

        let bundle = mrc_bundle(&trace, &map, capacity, &MrcMode::Exact, 2);
        let item = item_mrc(&trace, capacity);
        let block = block_mrc(&trace, &map, capacity / 16);
        let grid = iblp_split_grid(&trace, &map, capacity);

        assert_eq!(bundle.item.misses, item.misses);
        assert_eq!(bundle.block.misses, block.misses);
        assert_eq!(bundle.grid.len(), grid.len());
        for (a, b) in bundle.grid.iter().zip(&grid) {
            assert_eq!(a.item_lines, b.item_lines);
            assert_eq!(a.block_lines, b.block_lines);
            assert_eq!(a.miss_estimate, b.miss_estimate);
        }
        let best = bundle.best_split().expect("non-empty grid");
        assert_eq!(
            best.miss_estimate,
            grid.iter().map(|c| c.miss_estimate).min().unwrap()
        );
    }

    #[test]
    fn bundle_parallel_matches_serial_in_both_modes() {
        let trace = Trace::from_ids((0..20_000u64).map(|i| (i * 2654435761) % 2000));
        let map = BlockMap::strided(8);
        for mode in [
            MrcMode::Exact,
            MrcMode::Sampled(SamplerConfig::fixed(0.2).with_seed(9)),
        ] {
            let serial = mrc_bundle(&trace, &map, 256, &mode, 1);
            let parallel = mrc_bundle(&trace, &map, 256, &mode, 4);
            assert_eq!(serial.item.misses, parallel.item.misses, "{mode:?}");
            assert_eq!(serial.block.misses, parallel.block.misses, "{mode:?}");
        }
    }

    #[test]
    fn checked_bundle_matches_plain_bundle() {
        let trace = Trace::from_ids((0..10_000u64).map(|i| (i * 2654435761) % 1500));
        let map = BlockMap::strided(8);
        let plain = mrc_bundle(&trace, &map, 128, &MrcMode::Exact, 2);
        let checked =
            mrc_bundle_checked(&trace, &map, 128, &MrcMode::Exact, &MrcRunConfig::default())
                .unwrap();
        assert_eq!(plain.item.misses, checked.item.misses);
        assert_eq!(plain.block.misses, checked.block.misses);
        assert_eq!(plain.grid.len(), checked.grid.len());
        for (a, b) in plain.grid.iter().zip(&checked.grid) {
            assert_eq!(a.miss_estimate, b.miss_estimate);
        }
    }

    #[test]
    fn checked_bundle_resumes_from_partial_checkpoint() {
        let trace = Trace::from_ids((0..8_000u64).map(|i| (i * 48271) % 900));
        let map = BlockMap::strided(4);
        let mode = MrcMode::Exact;
        let reference = mrc_bundle(&trace, &map, 64, &mode, 1);

        // A checkpoint holding only the item curve, as if the run was
        // killed between the two passes.
        let hash = mrc_config_hash(&trace, &map, 64, &mode);
        let mut partial = MrcCheckpoint::new(hash);
        partial.curves.push(MrcCurveRecord {
            index: 0,
            accesses: reference.item.accesses,
            misses: reference.item.misses.clone(),
        });
        let cfg = MrcRunConfig {
            resume: Some(partial),
            ..MrcRunConfig::default()
        };
        let resumed = mrc_bundle_checked(&trace, &map, 64, &mode, &cfg).unwrap();
        assert_eq!(reference.item.misses, resumed.item.misses);
        assert_eq!(reference.block.misses, resumed.block.misses);
        for (a, b) in reference.grid.iter().zip(&resumed.grid) {
            assert_eq!(a.miss_estimate, b.miss_estimate);
        }
    }

    #[test]
    fn checked_bundle_refuses_mismatched_checkpoint() {
        let trace = Trace::from_ids((0..500u64).map(|i| i % 40));
        let map = BlockMap::strided(4);
        let cfg = MrcRunConfig {
            resume: Some(MrcCheckpoint::new(0xbad_c0de)),
            ..MrcRunConfig::default()
        };
        let err = mrc_bundle_checked(&trace, &map, 64, &MrcMode::Exact, &cfg).unwrap_err();
        assert!(matches!(err, GcError::CheckpointMismatch { .. }), "{err}");
    }

    #[test]
    fn config_hash_tracks_mode_and_capacity() {
        let trace = Trace::from_ids((0..500u64).map(|i| i % 40));
        let map = BlockMap::strided(4);
        let exact = mrc_config_hash(&trace, &map, 64, &MrcMode::Exact);
        assert_eq!(exact, mrc_config_hash(&trace, &map, 64, &MrcMode::Exact));
        assert_ne!(exact, mrc_config_hash(&trace, &map, 128, &MrcMode::Exact));
        let sampled = MrcMode::Sampled(SamplerConfig::fixed(0.1).with_seed(1));
        assert_ne!(exact, mrc_config_hash(&trace, &map, 64, &sampled));
        // Sampler seeds change results, so they must change the hash too.
        let reseeded = MrcMode::Sampled(SamplerConfig::fixed(0.1).with_seed(2));
        assert_ne!(
            mrc_config_hash(&trace, &map, 64, &sampled),
            mrc_config_hash(&trace, &map, 64, &reseeded)
        );
    }

    #[test]
    fn compiled_curves_are_bit_identical_to_sparse() {
        let mut x = 77u64;
        let ids: Vec<u64> = (0..25_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Sparse, scattered key space so the dense rename actually
                // relabels.
                (x % 3000) * 10_007
            })
            .collect();
        let trace = Trace::from_ids(ids);
        let map = BlockMap::strided(8);
        let compiled = CompiledTrace::compile(&trace, &map).unwrap();

        let item = item_mrc(&trace, 512);
        let item_c = item_mrc_compiled(&compiled, 512);
        assert_eq!(item.accesses, item_c.accesses);
        assert_eq!(item.misses, item_c.misses);

        let block = block_mrc(&trace, &map, 64);
        let block_c = block_mrc_compiled(&compiled, 64);
        assert_eq!(block.misses, block_c.misses);

        for mode in [
            MrcMode::Exact,
            MrcMode::Sampled(SamplerConfig::fixed(0.3).with_seed(42)),
        ] {
            let sparse = mrc_bundle(&trace, &map, 256, &mode, 2);
            let dense = mrc_bundle_compiled(&compiled, 256, &mode, 2);
            assert_eq!(sparse.item.misses, dense.item.misses, "{mode:?}");
            assert_eq!(sparse.block.misses, dense.block.misses, "{mode:?}");
            assert_eq!(sparse.grid.len(), dense.grid.len());
            for (a, b) in sparse.grid.iter().zip(&dense.grid) {
                assert_eq!(a.miss_estimate, b.miss_estimate, "{mode:?}");
            }
        }
    }

    #[test]
    fn long_distance_beyond_max_counts_as_miss() {
        // Reuse distance 5 with max_size 3: must count as a miss at k ≤ 3.
        let trace = Trace::from_ids([1, 2, 3, 4, 5, 6, 1]);
        let curve = item_mrc(&trace, 3);
        assert_eq!(curve.misses[3], 7, "all cold + the far reuse");
    }
}
