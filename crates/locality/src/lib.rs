//! # gc-locality
//!
//! The locality-of-reference model of §2/§7 of *"Spatial Locality and
//! Granularity Change in Caching"* and its fault-rate bounds.
//!
//! Albers, Favrholdt and Giel characterize a trace by a concave function
//! `f(n)` — the maximum number of distinct items in any window of `n`
//! accesses. The paper adds `g(n)` for distinct *blocks* per window;
//! `f(n)/g(n) ∈ [1, B]` measures the trace's spatial locality. Competitive
//! ratios in GC caching depend on the hypothetical comparison size `h`
//! (§5.3 shows this dependence is intrinsic), so §7 re-analyzes policies by
//! *fault rate* as a function of `(f, g)` alone:
//!
//! * [`bounds::thm8_lower`] — no deterministic policy can fault less than
//!   `g(f⁻¹(k+1) − 2) / (f⁻¹(k+1) − 2)` (Theorem 8);
//! * [`bounds::thm9_item_ub`] — the IBLP item layer faults at most
//!   `(i−1)/(f⁻¹(i+1) − 2)` (Theorem 9);
//! * [`bounds::thm10_block_ub`] — the block layer, viewed as an LRU cache
//!   of `b/B` block-entries over the block trace, faults at most
//!   `(b/B − 1)/(g⁻¹(b/B + 1) − 2)` (Theorem 10);
//! * [`bounds::thm11_iblp_ub`] — IBLP faults at most the min of the two
//!   (Theorem 11).
//!
//! [`table2`] reproduces the paper's Table 2 for the polynomial family
//! `f(n) = n^{1/p}`; [`empirical`] feeds the same bounds with measured
//! working-set profiles via an upper concave envelope.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod empirical;
pub mod function;
pub mod table2;

pub use empirical::EmpiricalLocality;
pub use function::{fit_polynomial, GcLocality, Locality, PolyLocality, SpatialRatio};
