//! Table 2 of the paper: salient fault-rate bounds for the polynomial
//! locality family, comparing an equally split IBLP cache (`i = b`) against
//! the general lower bound for a cache of half the total size (`h = i`,
//! i.e. `i + b = 2h`).
//!
//! The paper tabulates, for `f(n) = n^{1/p}` and three spatial-locality
//! levels, the asymptotic leading terms:
//!
//! | `f(n)` | `g(n)` | lower bound | item-layer UB | block-layer UB |
//! |---|---|---|---|---|
//! | `x^{1/p}` | `x^{1/p}`             | `1/h^{p−1}`                 | `1/i^{p−1}` | `B^{p−1}/b^{p−1}` |
//! | `x^{1/p}` | `x^{1/p}/B^{(p−1)/p}` | `1/(B^{(p−1)/p} h^{p−1})`   | `1/i^{p−1}` | `1/b^{p−1}` |
//! | `x^{1/p}` | `x^{1/p}/B`           | `1/(B h^{p−1})`             | `1/i^{p−1}` | `1/(B b^{p−1})` |
//!
//! (The printed paper writes the middle row's `g` as `x^{1/p}/B^{1/2}`; the
//! matching lower-bound column and the §7.3 analysis show the intended
//! ratio is `B^{(p−1)/p}`, which coincides with `B^{1/2}` at `p = 2` —
//! see [`SpatialRatio::MaxGap`].)

use crate::bounds;
use crate::function::{GcLocality, PolyLocality, SpatialRatio};

/// One row of Table 2, in both closed form (strings) and evaluated form.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Human-readable `f(n)` (e.g. `x^{1/2}`).
    pub f_desc: String,
    /// Human-readable `g(n)`.
    pub g_desc: String,
    /// Asymptotic lower bound as printed in the paper.
    pub lower_desc: String,
    /// Asymptotic item-layer upper bound.
    pub item_desc: String,
    /// Asymptotic block-layer upper bound.
    pub block_desc: String,
    /// Asymptotic lower bound evaluated at the row's `h`.
    pub lower_asym: f64,
    /// Asymptotic item UB evaluated at the row's `i`.
    pub item_asym: f64,
    /// Asymptotic block UB evaluated at the row's `b`.
    pub block_asym: f64,
    /// Exact Theorem 8 lower bound (no asymptotic simplification).
    pub lower_exact: f64,
    /// Exact Theorem 9 bound.
    pub item_exact: f64,
    /// Exact Theorem 10 bound.
    pub block_exact: f64,
}

fn pow_str(base: &str, e: f64) -> String {
    if (e - 1.0).abs() < 1e-9 {
        base.to_string()
    } else {
        format!("{base}^{e}")
    }
}

fn row(p: f64, block_size: f64, ratio: SpatialRatio, h: usize, i: usize, b: usize) -> Table2Row {
    let loc = GcLocality::new(PolyLocality::unit(p), block_size, ratio);
    let r = ratio.value(block_size, p);
    let e = p - 1.0;
    let hp = (h as f64).powf(e);
    let ip = (i as f64).powf(e);
    let bp = (b as f64).powf(e);
    let bb = block_size;

    let (g_desc, lower_desc, block_desc, lower_asym, block_asym) = match ratio {
        SpatialRatio::None => (
            format!("x^{{1/{p}}}"),
            format!("1/{}", pow_str("h", e)),
            format!("{}/{}", pow_str("B", e), pow_str("b", e)),
            1.0 / hp,
            bb.powf(e) / bp,
        ),
        SpatialRatio::MaxGap => (
            format!("x^{{1/{p}}}/B^{{({p}-1)/{p}}}"),
            format!("1/(B^{{({p}-1)/{p}}}·{})", pow_str("h", e)),
            format!("1/{}", pow_str("b", e)),
            1.0 / (r * hp),
            1.0 / bp,
        ),
        SpatialRatio::Full => (
            format!("x^{{1/{p}}}/B"),
            format!("1/(B·{})", pow_str("h", e)),
            format!("1/(B·{})", pow_str("b", e)),
            1.0 / (bb * hp),
            1.0 / (bb * bp),
        ),
        SpatialRatio::Custom(_) => (
            format!("x^{{1/{p}}}/{r}"),
            format!("1/({r}·{})", pow_str("h", e)),
            String::from("(custom)"),
            1.0 / (r * hp),
            f64::NAN,
        ),
    };

    Table2Row {
        f_desc: format!("x^{{1/{p}}}"),
        g_desc,
        lower_desc,
        item_desc: format!("1/{}", pow_str("i", e)),
        block_desc,
        lower_asym,
        item_asym: 1.0 / ip,
        block_asym,
        lower_exact: bounds::thm8_lower(&loc, h).unwrap_or(f64::NAN),
        item_exact: bounds::thm9_item_ub(&loc, i).unwrap_or(f64::NAN),
        block_exact: bounds::thm10_block_ub(&loc, b).unwrap_or(f64::NAN),
    }
}

/// Generate Table 2 for degree `p`, block size `B`, and the equally split
/// comparison `h = i = b` (so the online cache `i + b` is twice the
/// lower-bound cache — augmentation factor 2, as in the paper's analysis).
pub fn table2(p: f64, block_size: usize, h: usize) -> Vec<Table2Row> {
    assert!(block_size >= 1);
    [SpatialRatio::None, SpatialRatio::MaxGap, SpatialRatio::Full]
        .into_iter()
        .map(|ratio| row(p, block_size as f64, ratio, h, h, h))
        .collect()
}

/// The full six-row table as printed (p = 2 rows then general-p rows).
pub fn table2_paper(general_p: f64, block_size: usize, h: usize) -> Vec<Table2Row> {
    let mut rows = table2(2.0, block_size, h);
    rows.extend(table2(general_p, block_size, h));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_spatial_row_matches_paper_p2() {
        // Row 1: f = g = x^{1/2}: LB 1/h, item 1/i, block B/b.
        let rows = table2(2.0, 64, 1 << 20);
        let r = &rows[0];
        let h = (1u64 << 20) as f64;
        assert!((r.lower_asym - 1.0 / h).abs() < 1e-12);
        assert!((r.item_asym - 1.0 / h).abs() < 1e-12);
        assert!((r.block_asym - 64.0 / h).abs() < 1e-12);
    }

    #[test]
    fn maxgap_row_matches_paper_p2() {
        // Row 2: g = x^{1/2}/√B: LB 1/(√B·h), block 1/b.
        let rows = table2(2.0, 64, 1 << 20);
        let r = &rows[1];
        let h = (1u64 << 20) as f64;
        assert!((r.lower_asym - 1.0 / (8.0 * h)).abs() < 1e-15);
        assert!((r.block_asym - 1.0 / h).abs() < 1e-12);
    }

    #[test]
    fn full_row_matches_paper_p2() {
        // Row 3: g = x^{1/2}/B: LB 1/(Bh), block 1/(Bb).
        let rows = table2(2.0, 64, 1 << 20);
        let r = &rows[2];
        let h = (1u64 << 20) as f64;
        assert!((r.lower_asym - 1.0 / (64.0 * h)).abs() < 1e-18);
        assert!((r.block_asym - 1.0 / (64.0 * h)).abs() < 1e-18);
    }

    #[test]
    fn general_p_rows_scale_as_power() {
        let rows = table2(3.0, 64, 4096);
        let h = 4096.0f64;
        assert!((rows[0].lower_asym - 1.0 / h.powi(2)).abs() < 1e-15);
        assert!((rows[0].item_asym - 1.0 / h.powi(2)).abs() < 1e-15);
        assert!((rows[0].block_asym - 64.0f64.powi(2) / h.powi(2)).abs() < 1e-12);
        // Middle row: R = B^{2/3}, both partition UBs meet at 1/i^{p−1}
        // (§7.3: "the upper bounds for both partitions meet at 1/i^{p−1}").
        let r = &rows[1];
        assert!((r.item_asym - r.block_asym).abs() / r.item_asym < 1e-9);
    }

    #[test]
    fn exact_bounds_track_asymptotics() {
        // At large h the exact theorem values converge to the tabulated
        // leading terms (within a constant factor that → 1).
        for r in table2(2.0, 64, 1 << 22) {
            assert!((r.lower_exact / r.lower_asym - 1.0).abs() < 0.01, "{r:?}");
            assert!((r.item_exact / r.item_asym - 1.0).abs() < 0.01, "{r:?}");
            assert!((r.block_exact / r.block_asym - 1.0).abs() < 0.1, "{r:?}");
        }
    }

    #[test]
    fn gap_between_lb_and_iblp_is_at_most_fg_ratio() {
        // §7.3: the IBLP-vs-LB multiplicative gap equals the f/g ratio of
        // the row, peaking at B^{1−1/p} in the middle row.
        for p in [2.0f64, 4.0] {
            let rows = table2(p, 64, 1 << 20);
            for (idx, r) in rows.iter().enumerate() {
                let iblp = r.item_asym.min(r.block_asym);
                let gap = iblp / r.lower_asym;
                let expect = match idx {
                    0 => 1.0,
                    1 => 64.0f64.powf(1.0 - 1.0 / p),
                    _ => 64.0f64.powf(p - 1.0).min(64.0), // row 3 gap: B^{p−1} capped... see below
                };
                // Row 3: item UB 1/i^{p−1} vs LB 1/(B·h^{p−1}) with h=i ⇒
                // gap B; block UB equals LB exactly ⇒ gap 1. IBLP takes the
                // min so the gap is 1 there for p ≥ 2.
                let expect = if idx == 2 { 1.0 } else { expect };
                assert!(
                    (gap / expect - 1.0).abs() < 1e-6,
                    "p={p} row={idx}: gap={gap} expect={expect}"
                );
            }
        }
    }

    #[test]
    fn paper_table_has_six_rows() {
        let rows = table2_paper(3.0, 64, 4096);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.lower_asym.is_finite()));
    }
}
