//! Concave locality functions and the `(f, g)` pair of the GC model.

/// A concave, increasing working-set function `f` with its inverse.
///
/// `f(n)` bounds the number of distinct ids (items or blocks) in any window
/// of `n` accesses; `f⁻¹(m)` is the smallest window that can contain `m`
/// distinct ids. Implementations must satisfy `f(f⁻¹(m)) ≈ m` on their
/// domain.
pub trait Locality {
    /// Maximum distinct ids in a window of `n` accesses.
    fn f(&self, n: f64) -> f64;
    /// Smallest window containing `m` distinct ids.
    fn f_inv(&self, m: f64) -> f64;
}

/// The polynomial locality family `f(n) = (n/c)^{1/p}`, i.e.
/// `f⁻¹(m) = c·mᵖ`.
///
/// §7.3 argues this family covers the dominant terms of real traces
/// (locality functions are positive and concave, so `p ≥ 1`); `p = 1`,
/// `c = 1` is a pure scan, larger `p` means higher temporal locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolyLocality {
    /// Polynomial degree of `f⁻¹` (`p ≥ 1`).
    pub p: f64,
    /// Scale factor of `f⁻¹` (`c > 0`).
    pub c: f64,
}

impl PolyLocality {
    /// `f⁻¹(m) = c·mᵖ`.
    pub fn new(p: f64, c: f64) -> Self {
        assert!(p >= 1.0 && p.is_finite(), "need p ≥ 1 for concave f");
        assert!(c > 0.0 && c.is_finite(), "need c > 0");
        PolyLocality { p, c }
    }

    /// The unscaled family `f(n) = n^{1/p}` used by Table 2.
    pub fn unit(p: f64) -> Self {
        Self::new(p, 1.0)
    }
}

impl Locality for PolyLocality {
    #[inline]
    fn f(&self, n: f64) -> f64 {
        (n / self.c).max(0.0).powf(1.0 / self.p)
    }

    #[inline]
    fn f_inv(&self, m: f64) -> f64 {
        self.c * m.max(0.0).powf(self.p)
    }
}

/// How much spatial locality a trace has: the ratio `R = f(n)/g(n)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpatialRatio {
    /// No spatial locality: every item in its own block, `g = f` (`R = 1`).
    None,
    /// The worst case for IBLP (§7.3): `R = B^{1−1/p}`, where the two
    /// layers' upper bounds meet.
    ///
    /// Note: the paper's Table 2 prints the middle rows' `g(n)` as
    /// `x^{1/p}/B^{1/2}`, but its lower-bound column `1/(B^{(p−1)/p}h^{p−1})`
    /// and the §7.3 analysis both correspond to `R = B^{(p−1)/p}`; the two
    /// agree at `p = 2`. We implement the consistent general form.
    MaxGap,
    /// Maximal spatial locality: whole blocks accessed together,
    /// `g = f/B` (`R = B`).
    Full,
    /// An explicit ratio in `[1, B]`.
    Custom(f64),
}

impl SpatialRatio {
    /// The numeric ratio for block size `B` and temporal degree `p`.
    pub fn value(self, block_size: f64, p: f64) -> f64 {
        match self {
            SpatialRatio::None => 1.0,
            SpatialRatio::MaxGap => block_size.powf(1.0 - 1.0 / p),
            SpatialRatio::Full => block_size,
            SpatialRatio::Custom(r) => r,
        }
    }
}

/// The `(f, g)` pair of the GC locality model: an item working-set function
/// and a block working-set function `g(n) = f(n)/R`.
#[derive(Clone, Copy, Debug)]
pub struct GcLocality {
    /// The item working-set function.
    pub f: PolyLocality,
    /// Block size `B`.
    pub block_size: f64,
    ratio: f64,
}

impl GcLocality {
    /// Build the pair from a polynomial `f` and a spatial ratio.
    ///
    /// # Panics
    /// Panics if the resulting ratio leaves `[1, B]`.
    pub fn new(f: PolyLocality, block_size: f64, ratio: SpatialRatio) -> Self {
        assert!(block_size >= 1.0);
        let r = ratio.value(block_size, f.p);
        assert!(
            (1.0..=block_size * (1.0 + 1e-9)).contains(&r),
            "spatial ratio {r} outside [1, B={block_size}]"
        );
        GcLocality {
            f,
            block_size,
            ratio: r,
        }
    }

    /// The spatial ratio `R = f/g`.
    #[inline]
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// `g(n) = f(n)/R`: max distinct blocks in a window of `n` accesses.
    #[inline]
    pub fn g(&self, n: f64) -> f64 {
        self.f.f(n) / self.ratio
    }

    /// `g⁻¹(m) = f⁻¹(m·R)`: smallest window containing `m` distinct blocks.
    #[inline]
    pub fn g_inv(&self, m: f64) -> f64 {
        self.f.f_inv(m * self.ratio)
    }
}

/// Fit a [`PolyLocality`] to empirical `(window, distinct-count)` samples by
/// least-squares regression in log-log space.
///
/// The samples come from `gc_trace::WorkingSetProfile`; the fit recovers
/// `f(n) ≈ (n/c)^{1/p}`, i.e. `f⁻¹(m) = c·mᵖ`. Returns `None` when fewer
/// than two usable samples exist or the fitted `p` would be below 1 (a
/// convex profile, which the model excludes).
pub fn fit_polynomial(windows: &[usize], distinct: &[usize]) -> Option<PolyLocality> {
    assert_eq!(windows.len(), distinct.len(), "sample arrays must align");
    let pts: Vec<(f64, f64)> = windows
        .iter()
        .zip(distinct)
        .filter(|(&n, &d)| n > 0 && d > 0)
        .map(|(&n, &d)| ((n as f64).ln(), (d as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    // ln f = slope · ln n + intercept, with slope = 1/p and
    // intercept = −(ln c)/p.
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    if slope <= 0.0 || slope > 1.0 + 1e-9 {
        return None;
    }
    let p = (1.0 / slope).max(1.0);
    let c = (-intercept * p).exp();
    Some(PolyLocality::new(p, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_roundtrip() {
        let f = PolyLocality::new(2.0, 3.0);
        for m in [1.0, 5.0, 100.0] {
            let n = f.f_inv(m);
            assert!((f.f(n) - m).abs() < 1e-9, "m={m}");
        }
    }

    #[test]
    fn unit_scan_is_identity() {
        let f = PolyLocality::unit(1.0);
        assert_eq!(f.f(42.0), 42.0);
        assert_eq!(f.f_inv(42.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "p ≥ 1")]
    fn rejects_convex_f() {
        let _ = PolyLocality::new(0.5, 1.0);
    }

    #[test]
    fn spatial_ratio_values() {
        assert_eq!(SpatialRatio::None.value(64.0, 2.0), 1.0);
        assert_eq!(SpatialRatio::Full.value(64.0, 2.0), 64.0);
        assert!((SpatialRatio::MaxGap.value(64.0, 2.0) - 8.0).abs() < 1e-9);
        assert_eq!(SpatialRatio::Custom(5.0).value(64.0, 2.0), 5.0);
        // p → ∞ pushes the MaxGap ratio toward B (§7.3).
        assert!(SpatialRatio::MaxGap.value(64.0, 50.0) > 58.0);
    }

    #[test]
    fn gc_locality_g_divides_f() {
        let loc = GcLocality::new(PolyLocality::unit(2.0), 16.0, SpatialRatio::Full);
        assert!((loc.g(256.0) - 1.0).abs() < 1e-9); // f(256)=16, /16 = 1
        assert!((loc.g_inv(1.0) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn gc_locality_roundtrips_g() {
        let loc = GcLocality::new(PolyLocality::new(3.0, 2.0), 64.0, SpatialRatio::MaxGap);
        for m in [1.0, 4.0, 9.0] {
            let n = loc.g_inv(m);
            assert!((loc.g(n) - m).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "spatial ratio")]
    fn gc_locality_rejects_ratio_above_b() {
        let _ = GcLocality::new(PolyLocality::unit(2.0), 4.0, SpatialRatio::Custom(8.0));
    }

    #[test]
    fn fit_recovers_exact_polynomial() {
        let truth = PolyLocality::new(2.0, 1.0);
        let windows: Vec<usize> = (1..=12).map(|i| i * i).collect();
        let distinct: Vec<usize> = windows
            .iter()
            .map(|&n| truth.f(n as f64).round() as usize)
            .collect();
        let fit = fit_polynomial(&windows, &distinct).unwrap();
        assert!((fit.p - 2.0).abs() < 0.05, "fit {fit:?}");
        assert!((fit.c - 1.0).abs() < 0.2, "fit {fit:?}");
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_polynomial(&[5], &[2]).is_none());
        assert!(fit_polynomial(&[1, 1], &[1, 1]).is_none());
        // Convex growth (faster than linear) is rejected.
        assert!(fit_polynomial(&[2, 4, 8], &[2, 8, 64]).is_none());
    }

    #[test]
    fn fit_handles_scan() {
        // f(n) = n fits p = 1.
        let windows = [1usize, 2, 4, 8, 16, 32];
        let fit = fit_polynomial(&windows, &windows).unwrap();
        assert!((fit.p - 1.0).abs() < 1e-6);
    }
}
