//! Fault-rate bounds in the GC locality model (Theorems 8–11).
//!
//! All bounds take the locality pair [`GcLocality`] and cache sizes, and
//! return a fault rate in `(0, 1]`. The formulas are exactly the theorem
//! statements; no asymptotic simplification is applied (Table 2's
//! asymptotic rows live in [`crate::table2`]).

use crate::function::{GcLocality, Locality};

/// Theorem 8: any deterministic replacement policy with cache size `k`
/// faults at rate at least `g(f⁻¹(k+1) − 2) / (f⁻¹(k+1) − 2)`.
///
/// Returns `None` when the formula's window `f⁻¹(k+1) − 2` is not positive
/// (degenerately small caches).
pub fn thm8_lower(loc: &GcLocality, k: usize) -> Option<f64> {
    let window = loc.f.f_inv(k as f64 + 1.0) - 2.0;
    if window <= 0.0 {
        return None;
    }
    Some((loc.g(window) / window).min(1.0))
}

/// Theorem 9: the IBLP item layer (an LRU cache of `i` items) faults at
/// rate at most `(i − 1) / (f⁻¹(i+1) − 2)`.
pub fn thm9_item_ub(loc: &GcLocality, i: usize) -> Option<f64> {
    if i < 2 {
        return None;
    }
    let window = loc.f.f_inv(i as f64 + 1.0) - 2.0;
    if window <= 0.0 {
        return None;
    }
    Some(((i as f64 - 1.0) / window).min(1.0))
}

/// Theorem 10: the IBLP block layer (a block-LRU of `b/B` block entries
/// serving the block-granularity trace) faults at rate at most
/// `(b/B − 1) / (g⁻¹(b/B + 1) − 2)`.
///
/// The proof substitutes the block working-set function `g` for `f` in the
/// Albers et al. LRU bound, so the inverse here is `g⁻¹` (the theorem
/// statement's `f⁻¹` is a typo carried from the template).
pub fn thm10_block_ub(loc: &GcLocality, b: usize) -> Option<f64> {
    let entries = b as f64 / loc.block_size;
    if entries < 2.0 {
        return None;
    }
    let window = loc.g_inv(entries + 1.0) - 2.0;
    if window <= 0.0 {
        return None;
    }
    Some(((entries - 1.0) / window).min(1.0))
}

/// Theorem 11: IBLP with layer sizes `(i, b)` faults at rate at most the
/// minimum of its layers' bounds.
pub fn thm11_iblp_ub(loc: &GcLocality, i: usize, b: usize) -> Option<f64> {
    match (thm9_item_ub(loc, i), thm10_block_ub(loc, b)) {
        (Some(a), Some(c)) => Some(a.min(c)),
        (Some(a), None) => Some(a),
        (None, Some(c)) => Some(c),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{PolyLocality, SpatialRatio};

    fn loc(p: f64, b: f64, r: SpatialRatio) -> GcLocality {
        GcLocality::new(PolyLocality::unit(p), b, r)
    }

    #[test]
    fn thm8_matches_hand_computation() {
        // f(n)=√n, g=f, k=99: window = 100² − 2 = 9998,
        // bound = √9998 / 9998 ≈ 1/√9998.
        let l = loc(2.0, 64.0, SpatialRatio::None);
        let lb = thm8_lower(&l, 99).unwrap();
        let expected = (9998.0f64).sqrt() / 9998.0;
        assert!((lb - expected).abs() < 1e-12);
    }

    #[test]
    fn thm8_scales_down_with_spatial_locality() {
        // More spatial locality (bigger R) ⇒ fewer block faults are forced.
        let none = thm8_lower(&loc(2.0, 64.0, SpatialRatio::None), 1000).unwrap();
        let full = thm8_lower(&loc(2.0, 64.0, SpatialRatio::Full), 1000).unwrap();
        assert!((none / full - 64.0).abs() < 1e-6, "none={none} full={full}");
    }

    #[test]
    fn thm8_degenerate_cache_is_none() {
        // p=1, c=1: f_inv(k+1)−2 ≤ 0 for k ≤ 1.
        let l = loc(1.0, 4.0, SpatialRatio::None);
        assert!(thm8_lower(&l, 1).is_none());
        assert!(thm8_lower(&l, 2).is_some());
    }

    #[test]
    fn thm9_matches_albers_lru_form() {
        // Item layer ignores blocks entirely.
        let l = loc(2.0, 64.0, SpatialRatio::Full);
        let ub = thm9_item_ub(&l, 100).unwrap();
        let expected = 99.0 / (101.0f64.powi(2) - 2.0);
        assert!((ub - expected).abs() < 1e-12);
    }

    #[test]
    fn thm10_uses_block_working_set() {
        // With g = f/B, g⁻¹(m) = (mB)^p: a block layer of b = 2B entries
        // has window (3B)² − 2.
        let b_sz = 16.0;
        let l = loc(2.0, b_sz, SpatialRatio::Full);
        let ub = thm10_block_ub(&l, 32).unwrap();
        let window = (3.0 * b_sz).powi(2) - 2.0;
        assert!((ub - 1.0 / window).abs() < 1e-12);
    }

    #[test]
    fn thm10_needs_at_least_two_entries() {
        let l = loc(2.0, 16.0, SpatialRatio::Full);
        assert!(thm10_block_ub(&l, 16).is_none());
        assert!(thm10_block_ub(&l, 32).is_some());
    }

    #[test]
    fn thm11_takes_the_min() {
        let l = loc(2.0, 16.0, SpatialRatio::Full);
        let (i, b) = (64, 64);
        let item = thm9_item_ub(&l, i).unwrap();
        let block = thm10_block_ub(&l, b).unwrap();
        assert_eq!(thm11_iblp_ub(&l, i, b), Some(item.min(block)));
    }

    #[test]
    fn thm11_falls_back_to_available_layer() {
        let l = loc(2.0, 16.0, SpatialRatio::Full);
        // Block layer too small to matter: only the item bound applies.
        assert_eq!(thm11_iblp_ub(&l, 64, 4), thm9_item_ub(&l, 64));
        // Item layer degenerate: only the block bound applies.
        assert_eq!(thm11_iblp_ub(&l, 1, 64), thm10_block_ub(&l, 64));
        assert!(thm11_iblp_ub(&l, 1, 4).is_none());
    }

    #[test]
    fn lower_bound_at_total_size_below_iblp_upper() {
        // Model consistency: IBLP's total cache is i + b, so the Theorem 8
        // lower bound at k = i + b must not exceed IBLP's Theorem 11 upper
        // bound — otherwise the theorems would contradict each other.
        for &ratio in &[SpatialRatio::None, SpatialRatio::MaxGap, SpatialRatio::Full] {
            for &p in &[2.0, 3.0] {
                let l = loc(p, 64.0, ratio);
                let h = 4096;
                let lb = thm8_lower(&l, 2 * h).unwrap();
                let ub = thm11_iblp_ub(&l, h, h).unwrap();
                assert!(
                    lb <= ub * (1.0 + 1e-9),
                    "p={p} ratio={ratio:?}: lb={lb} > ub={ub}"
                );
            }
        }
    }

    #[test]
    fn fault_rates_are_capped_at_one() {
        let l = loc(1.0, 4.0, SpatialRatio::None);
        // Scans fault on every access; formulas must not exceed 1.
        assert!(thm9_item_ub(&l, 10).unwrap() <= 1.0);
        assert!(thm8_lower(&l, 10).unwrap() <= 1.0);
    }
}
