//! Empirical locality functions: feed the §7 bounds with *measured*
//! working-set profiles instead of fitted polynomials.
//!
//! The locality model requires `f` to be increasing and concave. Raw
//! profiles from `gc_trace::WorkingSetProfile` are increasing but can be
//! locally non-concave (sampling noise, phase boundaries), so
//! [`EmpiricalLocality`] takes the **upper concave envelope** of the
//! samples first — the smallest concave function dominating the data,
//! which keeps every Albers-style upper bound sound (a larger `f` weakens
//! `f⁻¹`, making bounds conservative).

use crate::function::Locality;

/// A piecewise-linear concave locality function built from samples.
#[derive(Clone, Debug)]
pub struct EmpiricalLocality {
    /// Hull points `(n, f(n))`, ascending in `n`, concave in value.
    points: Vec<(f64, f64)>,
}

impl EmpiricalLocality {
    /// Build from `(window, distinct)` samples (as produced by
    /// `WorkingSetProfile`): computes the upper concave envelope and
    /// interpolates linearly between hull points.
    ///
    /// Returns `None` if fewer than two usable samples exist.
    pub fn from_samples(windows: &[usize], distinct: &[usize]) -> Option<Self> {
        assert_eq!(windows.len(), distinct.len(), "sample arrays must align");
        let mut samples: Vec<(f64, f64)> = windows
            .iter()
            .zip(distinct)
            .filter(|(&n, &d)| n > 0 && d > 0)
            .map(|(&n, &d)| (n as f64, d as f64))
            .collect();
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        samples.dedup_by(|a, b| a.0 == b.0);
        if samples.len() < 2 {
            return None;
        }
        // Anchor the function at the origin-ish point (window 0 → 0 items)
        // so small-window queries behave.
        let mut pts = vec![(0.0, 0.0)];
        pts.extend(samples);
        // Upper concave envelope (monotone-chain, keeping upper hull).
        let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for p in pts {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if a→b→p turns clockwise (b above the a→p
                // chord — the concave/upper-hull condition); a counter-
                // clockwise turn means b dips below and must go.
                let cross = (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0);
                if cross <= 0.0 {
                    break;
                }
                hull.pop();
            }
            hull.push(p);
        }
        Some(EmpiricalLocality { points: hull })
    }

    /// The hull points `(n, f(n))`.
    pub fn hull(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl Locality for EmpiricalLocality {
    fn f(&self, n: f64) -> f64 {
        let pts = &self.points;
        if n <= pts[0].0 {
            return pts[0].1;
        }
        if let Some(last) = pts.last() {
            if n >= last.0 {
                // Extend flat beyond the data: the measured maximum is all
                // we can certify (keeps f bounded, hence f⁻¹ defined only
                // up to it).
                return last.1;
            }
        }
        let idx = pts.partition_point(|p| p.0 < n);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (n - x0) / (x1 - x0)
    }

    fn f_inv(&self, m: f64) -> f64 {
        let pts = &self.points;
        if m <= pts[0].1 {
            return pts[0].0;
        }
        if let Some(last) = pts.last() {
            if m >= last.1 {
                return last.0;
            }
        }
        let idx = pts.partition_point(|p| p.1 < m);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        if (y1 - y0).abs() < f64::EPSILON {
            return x0;
        }
        x0 + (x1 - x0) * (m - y0) / (y1 - y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_samples() {
        let loc = EmpiricalLocality::from_samples(&[10, 100], &[5, 20]).unwrap();
        assert!((loc.f(10.0) - 5.0).abs() < 1e-9);
        assert!((loc.f(100.0) - 20.0).abs() < 1e-9);
        let mid = loc.f(55.0);
        assert!(mid > 5.0 && mid < 20.0);
    }

    #[test]
    fn inverse_roundtrips_on_hull() {
        let loc = EmpiricalLocality::from_samples(&[4, 16, 64, 256], &[3, 9, 20, 35]).unwrap();
        for m in [3.0, 9.0, 15.0, 30.0] {
            let n = loc.f_inv(m);
            assert!((loc.f(n) - m).abs() < 1e-6, "m={m}");
        }
    }

    #[test]
    fn envelope_removes_nonconcave_dips() {
        // Middle sample dips below the hull chord; the envelope must skip
        // it, so f(50) interpolates the outer points.
        let loc = EmpiricalLocality::from_samples(&[10, 50, 100], &[10, 12, 60]).unwrap();
        let v = loc.f(50.0);
        // Chord from (0,0)… hull: (0,0)-(10,10)-(100,60): at 50 the chord
        // from (10,10) to (100,60) gives 10 + 40/90·50 ≈ 32.2 > 12.
        assert!(v > 30.0, "envelope not applied: f(50) = {v}");
        // The hull dominates every sample (upper envelope).
        assert!(loc.f(50.0) >= 12.0);
    }

    #[test]
    fn envelope_is_concave_and_monotone() {
        let windows: Vec<usize> = (1..=12).map(|i| i * i * 3).collect();
        let distinct: Vec<usize> = vec![2, 7, 9, 15, 16, 24, 25, 31, 33, 38, 40, 44];
        let loc = EmpiricalLocality::from_samples(&windows, &distinct).unwrap();
        let hull = loc.hull();
        // Monotone values.
        assert!(hull.windows(2).all(|w| w[1].1 >= w[0].1));
        // Concave: slopes non-increasing.
        let slopes: Vec<f64> = hull
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
            .collect();
        assert!(
            slopes.windows(2).all(|s| s[1] <= s[0] + 1e-9),
            "slopes not non-increasing: {slopes:?}"
        );
    }

    #[test]
    fn degenerate_input_rejected() {
        assert!(EmpiricalLocality::from_samples(&[5], &[3]).is_none());
        assert!(EmpiricalLocality::from_samples(&[], &[]).is_none());
        assert!(EmpiricalLocality::from_samples(&[5, 5], &[3, 4]).is_none());
    }

    #[test]
    fn clamps_beyond_data() {
        let loc = EmpiricalLocality::from_samples(&[10, 100], &[5, 20]).unwrap();
        assert_eq!(loc.f(1_000_000.0), 20.0);
        assert_eq!(loc.f_inv(99.0), 100.0);
        assert_eq!(loc.f_inv(0.0), 0.0);
    }

    #[test]
    fn dominates_all_samples() {
        let windows = [2usize, 8, 32, 128, 512];
        let distinct = [2usize, 5, 11, 30, 40];
        let loc = EmpiricalLocality::from_samples(&windows, &distinct).unwrap();
        for (&n, &d) in windows.iter().zip(&distinct) {
            assert!(
                loc.f(n as f64) >= d as f64 - 1e-9,
                "envelope below sample at {n}"
            );
        }
    }
}
