//! Item-Block Layered Partitioning (IBLP) — the paper's policy (§5).
//!
//! IBLP splits its `k = i + b` lines into two layers (Figure 4):
//!
//! * an **item layer** of `i` lines: an item-granular LRU that serves every
//!   access and loads only requested items (temporal locality);
//! * a **block layer** of `b` lines: a block-granular LRU that serves only
//!   accesses that *miss* in the item layer, loading and evicting whole
//!   blocks (spatial locality).
//!
//! Two design subtleties from §5.1 are honored here:
//!
//! 1. **Ordering** — item-layer hits do *not* touch the block layer's LRU
//!    list, so a block with one hot item cannot pin itself in the block
//!    layer and pollute it.
//! 2. **Neither inclusive nor exclusive** — an item may occupy a line in
//!    both layers at once; each copy consumes one line of its layer's
//!    budget, exactly like a real partitioned cache.
//!
//! Theorem 7 bounds IBLP's competitive ratio; `gc-bounds` has the closed
//! forms and the §5.3 optimal split.

use crate::lru_list::LruList;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockId, BlockMap, ItemId};

/// The IBLP policy. See the module docs for semantics.
///
/// ```
/// use gc_policies::{GcPolicy, Iblp};
/// use gc_types::{BlockMap, ItemId};
///
/// let mut cache = Iblp::new(8, 8, BlockMap::strided(4));
/// assert!(cache.access(ItemId(0)).is_miss()); // loads the whole block
/// assert!(cache.access(ItemId(1)).is_hit());  // spatial hit via block layer
/// assert!(cache.access(ItemId(0)).is_hit());  // temporal hit via item layer
/// ```
#[derive(Clone, Debug)]
pub struct Iblp {
    item_size: usize,
    block_size_lines: usize,
    block_slots: usize,
    map: BlockMap,
    item_layer: LruList,
    block_layer: LruList,
    /// Lines held by the block layer, maintained incrementally so `len`
    /// is O(1) — the simulator reads it after every access for `peak_len`.
    block_lines: usize,
}

impl Iblp {
    /// Build IBLP with an item layer of `item_size` lines and a block layer
    /// of `block_size_lines` lines (holding `⌊block_size_lines/B⌋` blocks).
    ///
    /// # Panics
    /// Panics if `item_size == 0` or the block layer cannot hold one block.
    pub fn new(item_size: usize, block_size_lines: usize, map: BlockMap) -> Self {
        assert!(item_size > 0, "item layer must hold at least one item");
        let b = map.max_block_size();
        assert!(
            block_size_lines >= b,
            "block layer of {block_size_lines} lines cannot hold a block of {b} items"
        );
        let block_slots = block_size_lines / b;
        let universe = Universe::of(&map);
        Iblp {
            item_size,
            block_size_lines,
            block_slots,
            map,
            item_layer: LruList::with_index(item_size, universe.item_index()),
            block_layer: LruList::with_index(block_slots, universe.block_index()),
            block_lines: 0,
        }
    }

    /// IBLP with an even split: `i = ⌈k/2⌉`, `b = ⌊k/2⌋` — the
    /// configuration analyzed in §7.3 / Table 2.
    pub fn balanced(capacity: usize, map: BlockMap) -> Self {
        let i = capacity.div_ceil(2);
        Self::new(i, capacity - i, map)
    }

    /// Item-layer size `i`.
    pub fn item_layer_size(&self) -> usize {
        self.item_size
    }

    /// Block-layer size `b` in lines.
    pub fn block_layer_size(&self) -> usize {
        self.block_size_lines
    }

    /// Whether the block layer currently holds `block`.
    pub fn block_resident(&self, block: BlockId) -> bool {
        self.block_layer.contains(block.0)
    }

    /// Promote `item` into the item layer, returning an item evicted from
    /// the cache as a whole (one that the block layer does not cover).
    fn promote(&mut self, item: ItemId) -> Option<ItemId> {
        self.item_layer.touch(item.0);
        if self.item_layer.len() > self.item_size {
            let victim = ItemId(self.item_layer.evict_lru().expect("nonempty"));
            let covered = self.block_layer.contains(self.map.block_of(victim).0);
            if !covered {
                return Some(victim);
            }
        }
        None
    }
}

impl GcPolicy for Iblp {
    fn name(&self) -> String {
        format!(
            "IBLP(i={},b={},B={})",
            self.item_size,
            self.block_size_lines,
            self.map.max_block_size()
        )
    }

    fn capacity(&self) -> usize {
        self.item_size + self.block_size_lines
    }

    /// Lines in use across both layers. An item resident in both layers
    /// occupies two lines, matching the partitioned-cache space model of
    /// §5.1 (the layers are neither inclusive nor exclusive).
    fn len(&self) -> usize {
        self.item_layer.len() + self.block_lines
    }

    fn contains(&self, item: ItemId) -> bool {
        self.item_layer.contains(item.0)
            || self
                .map
                .try_block_of(item)
                .is_some_and(|b| self.block_layer.contains(b.0))
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        // Item-layer hit: serve without disturbing the block layer (§5.1).
        if self.item_layer.contains(item.0) {
            self.item_layer.touch(item.0);
            return AccessKind::Hit;
        }

        let block = self.map.block_of(item);

        // Block-layer hit: refresh the block's recency, promote the item.
        if self.block_layer.contains(block.0) {
            self.block_layer.touch(block.0);
            let _ = self.promote(item);
            return AccessKind::Hit;
        }

        // Overall miss: load the whole block into the block layer.
        // Items of the block already held by the item layer were resident
        // before, so they are not part of `loaded`.
        out.clear();
        for z in self.map.items_of(block) {
            if !self.item_layer.contains(z.0) {
                out.loaded.push(z);
            }
        }
        debug_assert!(out.loaded.contains(&item));

        self.block_layer.touch(block.0);
        self.block_lines += self.map.block_len(block);
        if self.block_layer.len() > self.block_slots {
            let victim = BlockId(self.block_layer.evict_lru().expect("nonempty"));
            debug_assert_ne!(victim, block, "just-loaded block cannot be LRU");
            self.block_lines -= self.map.block_len(victim);
            for z in self.map.items_of(victim) {
                if !self.item_layer.contains(z.0) {
                    out.evicted.push(z);
                }
            }
        }
        if let Some(victim) = self.promote(item) {
            out.evicted.push(victim);
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.item_layer.clear();
        self.block_layer.clear();
        self.block_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4() -> BlockMap {
        BlockMap::strided(4)
    }

    #[test]
    fn spatial_hits_come_from_block_layer() {
        let mut c = Iblp::new(4, 8, map4());
        let r = c.access(ItemId(0));
        assert!(r.is_miss());
        assert_eq!(r.loaded().len(), 4, "whole block loads");
        // Sibling items hit via the block layer.
        assert!(c.access(ItemId(1)).is_hit());
        assert!(c.access(ItemId(3)).is_hit());
    }

    #[test]
    fn temporal_hits_do_not_touch_block_lru() {
        // Block layer holds 2 blocks (b=8, B=4). Access blocks 0 then 1,
        // then hammer item 0 (an item-layer hit after promotion). Block 0
        // must NOT be refreshed in the block layer, so loading block 2
        // evicts block 0, not block 1.
        let mut c = Iblp::new(4, 8, map4());
        c.access(ItemId(0)); // block 0 loads; item 0 promoted
        c.access(ItemId(4)); // block 1 loads
        for _ in 0..5 {
            assert!(c.access(ItemId(0)).is_hit(), "item-layer hit");
        }
        let r = c.access(ItemId(8)); // block 2
        assert!(r.is_miss());
        // Block 0 was LRU in the block layer despite the hot item.
        assert!(!c.block_resident(BlockId(0)));
        assert!(c.block_resident(BlockId(1)));
        // Item 0 survives in the item layer.
        assert!(c.contains(ItemId(0)));
    }

    #[test]
    fn eviction_respects_layer_overlap() {
        // An item evicted from the item layer stays resident if its block
        // is still in the block layer.
        let mut c = Iblp::new(1, 4, map4());
        c.access(ItemId(0)); // block 0 in block layer; item 0 in item layer
        let r = c.access(ItemId(1)); // hit via block layer; promotion evicts 0 from item layer
        assert!(r.is_hit());
        assert!(c.contains(ItemId(0)), "still covered by block layer");
    }

    #[test]
    fn eviction_reported_when_uncovered() {
        // Item promoted long ago whose block has left the block layer is
        // truly evicted when it falls off the item layer.
        let mut c = Iblp::new(2, 4, map4()); // 1 block slot
        c.access(ItemId(0)); // block 0; item layer [0]
        c.access(ItemId(4)); // block 1 replaces block 0; item layer [4,0]
                             // Now item 0 is only in the item layer. Two more promotions push it out.
        let r1 = c.access(ItemId(5)); // hit via block layer; item layer [5,4], 0 evicted
        assert!(r1.is_hit());
        assert!(!c.contains(ItemId(0)), "item 0 fully evicted");
    }

    #[test]
    fn miss_lists_block_evictions() {
        let mut c = Iblp::new(4, 4, map4()); // 1 block slot
        c.access(ItemId(0)); // block 0
        let r = c.access(ItemId(4)); // block 1 evicts block 0
                                     // Items 1,2,3 leave (not in item layer); item 0 survives in item layer.
        assert_eq!(r.evicted(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert!(c.contains(ItemId(0)));
        assert!(r.loaded().contains(&ItemId(4)));
    }

    #[test]
    fn loaded_excludes_items_already_in_item_layer() {
        let mut c = Iblp::new(4, 4, map4()); // 1 block slot
        c.access(ItemId(0)); // block 0; item 0 promoted
        c.access(ItemId(4)); // block 1 replaces block 0; item 0 only in item layer
        let r = c.access(ItemId(1)); // block 0 reloads
        assert!(r.is_miss());
        // Item 0 was already resident (item layer), so block 0's reload
        // brings in 1, 2, 3 only.
        assert_eq!(r.loaded(), &[ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn capacity_and_len_count_lines() {
        let mut c = Iblp::new(3, 8, map4());
        assert_eq!(c.capacity(), 11);
        c.access(ItemId(0));
        // Item 0 occupies an item-layer line AND a block-layer line.
        assert_eq!(c.len(), 1 + 4);
        c.access(ItemId(4));
        assert_eq!(c.len(), 2 + 8);
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn balanced_split() {
        let c = Iblp::balanced(64, map4());
        assert_eq!(c.item_layer_size(), 32);
        assert_eq!(c.block_layer_size(), 32);
        assert_eq!(c.capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "cannot hold a block")]
    fn block_layer_must_fit_one_block() {
        let _ = Iblp::new(4, 2, map4());
    }

    #[test]
    fn beats_item_cache_on_streaming() {
        // Whole-block streaming: IBLP hits B−1 of every B accesses; an item
        // cache of equal size misses everything (universe >> k).
        use crate::item::ItemLru;
        let map = BlockMap::strided(8);
        let mut iblp = Iblp::new(8, 8, map);
        let mut lru = ItemLru::new(16);
        let mut iblp_misses = 0;
        let mut lru_misses = 0;
        for id in 0..4000u64 {
            if iblp.access(ItemId(id)).is_miss() {
                iblp_misses += 1;
            }
            if lru.access(ItemId(id)).is_miss() {
                lru_misses += 1;
            }
        }
        assert_eq!(lru_misses, 4000);
        assert_eq!(iblp_misses, 4000 / 8);
    }

    #[test]
    fn beats_block_cache_on_sparse_reuse() {
        // One hot item per block, working set of 6 blocks: a block cache of
        // 16 lines (2 block slots) thrashes; IBLP's item layer holds all 6.
        use crate::block::BlockLru;
        let map = BlockMap::strided(8);
        let mut iblp = Iblp::new(8, 8, map.clone());
        let mut blk = BlockLru::new(16, map);
        let mut iblp_misses = 0;
        let mut blk_misses = 0;
        for round in 0..200u64 {
            for b in 0..6u64 {
                let item = ItemId(b * 8);
                if iblp.access(item).is_miss() && round > 0 {
                    iblp_misses += 1;
                }
                if blk.access(item).is_miss() && round > 0 {
                    blk_misses += 1;
                }
            }
        }
        assert_eq!(iblp_misses, 0, "item layer covers the working set");
        assert!(blk_misses > 500, "block cache thrashes: {blk_misses}");
    }

    #[test]
    fn reset_clears_both_layers() {
        let mut c = Iblp::new(4, 8, map4());
        c.access(ItemId(0));
        c.reset();
        assert_eq!(c.len(), 0);
        assert!(c.access(ItemId(0)).is_miss());
    }

    #[test]
    fn contains_matches_access_outcome() {
        let mut c = Iblp::new(3, 8, map4());
        let ids = [0u64, 5, 1, 9, 13, 2, 7, 0, 4, 11, 3, 8, 1];
        for &id in &ids {
            let pre = c.contains(ItemId(id));
            let r = c.access(ItemId(id));
            assert_eq!(pre, r.is_hit(), "at {id}");
        }
    }
}
