//! The `a`-parameter policy family of Theorem 4.
//!
//! §4.3 classifies deterministic policies by the number `a` of distinct
//! accesses a block must receive before the policy loads *all* of it, and
//! §4.4 concludes the ratio is minimized at the extremes: load a single
//! item (`a = B`, an item cache) or the whole block immediately (`a = 1`),
//! "and nothing in between". [`ThresholdLoad`] realizes the whole family so
//! the claim — and the Theorem 4 lower bound — can be checked empirically.
//!
//! Eviction is item-granular LRU regardless of `a` (§4.4's second
//! recommendation: evict items individually, preferring never-accessed
//! ones is explored by [`Gcm`](crate::Gcm); here plain LRU keeps the
//! family pure).

use crate::lru_list::LruList;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockId, BlockMap, FxHashMap, FxHashSet, ItemId};

/// Per-block distinct-access tracking, sparse (hash maps) or dense
/// (epoch-stamped arrays: an item counts toward its block's pending set
/// iff its stamp equals the block's current epoch; a full load bumps the
/// block epoch, invalidating all stamps at once).
#[derive(Clone, Debug)]
enum Pending {
    Sparse(FxHashMap<BlockId, FxHashSet<ItemId>>),
    Dense {
        block_epoch: Vec<u64>,
        count: Vec<u32>,
        item_epoch: Vec<u64>,
    },
}

impl Pending {
    fn new(universe: &Universe) -> Self {
        match (universe.n_items(), universe.n_blocks()) {
            (Some(n_items), Some(n_blocks)) => Pending::Dense {
                block_epoch: vec![1; n_blocks],
                count: vec![0; n_blocks],
                item_epoch: vec![0; n_items],
            },
            _ => Pending::Sparse(FxHashMap::default()),
        }
    }

    /// Record a distinct access of `item` within `block`; returns the
    /// block's distinct-access count afterwards.
    fn note(&mut self, block: BlockId, item: ItemId) -> usize {
        match self {
            Pending::Sparse(map) => {
                let set = map.entry(block).or_default();
                set.insert(item);
                set.len()
            }
            Pending::Dense {
                block_epoch,
                count,
                item_epoch,
            } => {
                let b = block.0 as usize;
                let i = item.0 as usize;
                if item_epoch[i] != block_epoch[b] {
                    item_epoch[i] = block_epoch[b];
                    count[b] += 1;
                }
                count[b] as usize
            }
        }
    }

    /// The block was fully loaded: restart its distinct-access count.
    fn complete(&mut self, block: BlockId) {
        match self {
            Pending::Sparse(map) => {
                map.remove(&block);
            }
            Pending::Dense {
                block_epoch, count, ..
            } => {
                let b = block.0 as usize;
                block_epoch[b] += 1;
                count[b] = 0;
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Pending::Sparse(map) => map.clear(),
            Pending::Dense {
                block_epoch, count, ..
            } => {
                // Bumping every block's epoch strands all item stamps in
                // the past; item_epoch need not be touched.
                for e in block_epoch.iter_mut() {
                    *e += 1;
                }
                count.fill(0);
            }
        }
    }
}

/// Loads the full block once `a` distinct items of it have been requested
/// (cumulatively since the block was last fully loaded); below the
/// threshold it loads only the requested item. Evicts item-granular LRU.
///
/// * `a = 1` — the "load whole block, evict items" policy §4.4 recommends
///   for large caches.
/// * `a = B` — behaves like an item cache until a block's every item has
///   been requested.
#[derive(Clone, Debug)]
pub struct ThresholdLoad {
    capacity: usize,
    threshold: usize,
    map: BlockMap,
    items: LruList,
    /// Distinct items of each block requested since its last full load.
    pending: Pending,
}

impl ThresholdLoad {
    /// A threshold-`a` cache of `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity < B`, `a == 0`, or `a > B`.
    pub fn new(capacity: usize, threshold: usize, map: BlockMap) -> Self {
        let b = map.max_block_size();
        assert!(capacity >= b, "capacity {capacity} below block size {b}");
        assert!(
            (1..=b).contains(&threshold),
            "threshold a={threshold} outside [1, B={b}]"
        );
        let universe = Universe::of(&map);
        ThresholdLoad {
            capacity,
            threshold,
            map,
            items: LruList::with_index(capacity, universe.item_index()),
            pending: Pending::new(&universe),
        }
    }

    /// The policy's `a` parameter.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn evict_overflow(&mut self, evicted: &mut Vec<ItemId>) {
        while self.items.len() > self.capacity {
            let victim = ItemId(self.items.evict_lru().expect("nonempty"));
            evicted.push(victim);
        }
    }
}

impl GcPolicy for ThresholdLoad {
    fn name(&self) -> String {
        format!(
            "ThresholdLoad(k={},a={},B={})",
            self.capacity,
            self.threshold,
            self.map.max_block_size()
        )
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.items.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if !self.items.touch(item.0) {
            return AccessKind::Hit;
        }
        // `touch` inserted the item; decide whether this miss crosses the
        // block's distinct-access threshold.
        let block = self.map.block_of(item);
        let full_load = self.pending.note(block, item) >= self.threshold;

        out.clear();
        out.loaded.push(item);
        if full_load {
            self.pending.complete(block);
            for z in self.map.items_of(block) {
                if z != item && self.items.touch(z.0) {
                    out.loaded.push(z);
                }
            }
        }
        self.evict_overflow(&mut out.evicted);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.items.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4() -> BlockMap {
        BlockMap::strided(4)
    }

    #[test]
    fn a1_loads_whole_block_immediately() {
        let mut c = ThresholdLoad::new(8, 1, map4());
        let r = c.access(ItemId(0));
        assert_eq!(r.loaded().len(), 4);
        assert!(c.access(ItemId(3)).is_hit());
    }

    #[test]
    fn a2_loads_block_on_second_distinct_miss() {
        let mut c = ThresholdLoad::new(8, 2, map4());
        let r = c.access(ItemId(0));
        assert_eq!(r.loaded(), &[ItemId(0)], "first distinct access: item only");
        assert!(!c.contains(ItemId(1)));
        let r = c.access(ItemId(1));
        assert_eq!(r.loaded().len(), 3, "second distinct access: rest of block");
        assert!(c.contains(ItemId(2)) && c.contains(ItemId(3)));
    }

    #[test]
    fn a_equals_b_behaves_like_item_cache_until_saturation() {
        let mut c = ThresholdLoad::new(8, 4, map4());
        assert_eq!(c.access(ItemId(0)).loaded().len(), 1);
        assert_eq!(c.access(ItemId(1)).loaded().len(), 1);
        assert_eq!(c.access(ItemId(2)).loaded().len(), 1);
        // Fourth distinct item completes the block: full load is a no-op
        // beyond the request itself (everything already resident).
        assert_eq!(c.access(ItemId(3)).loaded().len(), 1);
    }

    #[test]
    fn repeated_misses_on_same_item_do_not_advance_threshold() {
        let mut c = ThresholdLoad::new(4, 2, map4());
        c.access(ItemId(0));
        // Push item 0 out with another block's items.
        c.access(ItemId(4));
        c.access(ItemId(5)); // block 1 crosses threshold, loads 4..8 (4 items)
        assert!(!c.contains(ItemId(0)));
        // Second miss on item 0: its pending set still {0}, so the
        // *distinct* count stays 1 — still a single-item load.
        let r = c.access(ItemId(0));
        assert_eq!(r.loaded(), &[ItemId(0)]);
    }

    #[test]
    fn eviction_is_item_granular_lru() {
        let mut c = ThresholdLoad::new(4, 1, map4());
        c.access(ItemId(0)); // block 0 fills the cache
        let r = c.access(ItemId(4)); // block 1 loads 4 items, evicts all of block 0
        assert_eq!(r.evicted().len(), 4);
        // LRU order within the load: items were touched 0,1,2,3 so all left.
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn threshold_validated() {
        assert!(std::panic::catch_unwind(|| ThresholdLoad::new(8, 0, map4())).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdLoad::new(8, 5, map4())).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdLoad::new(2, 1, map4())).is_err());
    }

    #[test]
    fn capacity_respected_under_full_loads() {
        let mut c = ThresholdLoad::new(6, 1, map4());
        let mut x = 5u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(ItemId(x % 100));
            assert!(c.len() <= 6);
        }
    }

    #[test]
    fn reset_clears_pending() {
        let mut c = ThresholdLoad::new(8, 2, map4());
        c.access(ItemId(0));
        c.reset();
        // After reset the block needs two distinct accesses again.
        let r = c.access(ItemId(1));
        assert_eq!(r.loaded(), &[ItemId(1)]);
    }
}
