//! W-TinyLFU (Einziger, Friedman & Manes 2017) — a frequency-informed item
//! cache: a small admission *window* (LRU) in front of an SLRU main region,
//! with a [`CountMinSketch`] deciding, on window overflow, whether the
//! window's victim deserves a main-region slot more than the main region's
//! own victim.
//!
//! Adapted to the GC model's **no-bypass** rule: the requested item always
//! enters the window (it must be resident through its own access); the
//! frequency filter only arbitrates between two already-resident items, so
//! no admission decision ever rejects the request itself.

use crate::lru_list::LruList;
use crate::sketch::CountMinSketch;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, ItemId};

/// The W-TinyLFU replacement policy (item-granular).
#[derive(Clone, Debug)]
pub struct WTinyLfu {
    capacity: usize,
    window_cap: usize,
    protected_cap: usize,
    window: LruList,
    probationary: LruList,
    protected: LruList,
    sketch: CountMinSketch,
}

impl WTinyLfu {
    /// A W-TinyLFU cache of `capacity` items: window = `capacity/8`
    /// (≥ 1), main region = SLRU with 80% protected.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// A W-TinyLFU cache whose list indices are backed by `universe`, with
    /// the sketch hashing decoded (original) ids so admission duels match
    /// the sparse run bit for bit.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let window_cap = (capacity / 8).max(1).min(capacity);
        let main = capacity - window_cap;
        let sketch = match universe.decode() {
            Some(decode) => CountMinSketch::with_decode(capacity.max(64), decode),
            None => CountMinSketch::new(capacity.max(64)),
        };
        WTinyLfu {
            capacity,
            window_cap,
            protected_cap: main * 4 / 5,
            window: LruList::with_index(window_cap, universe.item_index()),
            probationary: LruList::with_index(main, universe.item_index()),
            protected: LruList::with_index(main, universe.item_index()),
            sketch,
        }
    }

    fn main_len(&self) -> usize {
        self.probationary.len() + self.protected.len()
    }

    fn main_cap(&self) -> usize {
        self.capacity - self.window_cap
    }

    /// Promote a main-region item into the protected segment.
    fn promote(&mut self, item: ItemId) {
        self.protected.touch(item.0);
        if self.protected.len() > self.protected_cap {
            let demoted = self
                .protected
                .evict_lru()
                .expect("overflow implies nonempty");
            self.probationary.touch(demoted);
        }
    }

    /// Handle window overflow: the window's LRU candidate either moves to
    /// the main region (free slot, or by winning the frequency duel against
    /// the main victim) or is evicted. Returns the item that left the
    /// cache, if any.
    fn spill_window(&mut self) -> Option<ItemId> {
        let candidate = ItemId(self.window.evict_lru().expect("spill on nonempty window"));
        if self.main_cap() == 0 {
            return Some(candidate);
        }
        if self.main_len() < self.main_cap() {
            self.probationary.touch(candidate.0);
            return None;
        }
        let victim = ItemId(
            self.probationary
                .peek_lru()
                .or_else(|| self.protected.peek_lru())
                .expect("main region full implies nonempty"),
        );
        if self.sketch.estimate(candidate) > self.sketch.estimate(victim) {
            self.probationary.remove(victim.0);
            self.protected.remove(victim.0);
            self.probationary.touch(candidate.0);
            Some(victim)
        } else {
            Some(candidate)
        }
    }
}

impl GcPolicy for WTinyLfu {
    fn name(&self) -> String {
        format!("W-TinyLFU(k={},win={})", self.capacity, self.window_cap)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.window.len() + self.main_len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.window.contains(item.0)
            || self.probationary.contains(item.0)
            || self.protected.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        self.sketch.increment(item);
        if self.window.contains(item.0) {
            self.window.touch(item.0);
            return AccessKind::Hit;
        }
        if self.protected.contains(item.0) {
            self.protected.touch(item.0);
            return AccessKind::Hit;
        }
        if self.probationary.contains(item.0) {
            self.probationary.remove(item.0);
            self.promote(item);
            return AccessKind::Hit;
        }
        // Miss: always admit into the window (no-bypass), then rebalance.
        out.clear();
        out.loaded.push(item);
        self.window.touch(item.0);
        if self.window.len() > self.window_cap {
            if let Some(gone) = self.spill_window() {
                out.evicted.push(gone);
            }
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.window.clear();
        self.probationary.clear();
        self.protected.clear();
        self.sketch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_guards_main_region_from_scans() {
        let mut c = WTinyLfu::new(16); // window 2, main 14
                                       // Make items 1..=8 frequent and resident in the main region.
        for _ in 0..6 {
            for id in 1..=8u64 {
                c.access(ItemId(id));
            }
        }
        // A long one-shot scan: scanners reach the window, lose every
        // frequency duel, and never displace the hot set.
        for id in 1000..1400u64 {
            c.access(ItemId(id));
        }
        for id in 1..=8u64 {
            assert!(c.contains(ItemId(id)), "hot item {id} scanned out");
        }
    }

    #[test]
    fn beats_lru_on_scan_pollution() {
        use crate::item::ItemLru;
        let mut trace = Vec::new();
        for round in 0..400u64 {
            for hot in 0..12u64 {
                trace.push(hot);
            }
            for s in 0..6u64 {
                trace.push(10_000 + round * 6 + s);
            }
        }
        let run = |mut p: Box<dyn GcPolicy>| {
            trace
                .iter()
                .filter(|&&id| p.access(ItemId(id)).is_miss())
                .count()
        };
        let tiny = run(Box::new(WTinyLfu::new(16)));
        let lru = run(Box::new(ItemLru::new(16)));
        assert!(tiny < lru / 2, "W-TinyLFU {tiny} vs LRU {lru}");
    }

    #[test]
    fn request_always_admitted_no_bypass() {
        let mut c = WTinyLfu::new(8);
        for id in 0..500u64 {
            c.access(ItemId(id));
            assert!(c.contains(ItemId(id)), "no-bypass violated at {id}");
        }
    }

    #[test]
    fn capacity_and_eviction_invariants() {
        let mut c = WTinyLfu::new(10);
        let mut x = 9u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = ItemId(x % 60);
            let pre = c.contains(item);
            let r = c.access(item);
            assert_eq!(pre, r.is_hit());
            assert!(c.len() <= 10);
            for e in r.evicted() {
                assert!(!c.contains(*e), "zombie {e}");
            }
        }
    }

    #[test]
    fn tiny_capacities_work() {
        for capacity in 1..6usize {
            let mut c = WTinyLfu::new(capacity);
            for id in 0..40u64 {
                c.access(ItemId(id % 9));
                assert!(c.len() <= capacity);
            }
        }
    }
}
