//! LRU-K (O'Neil, O'Neil & Weikum, SIGMOD'93) — evict the item whose K-th
//! most recent reference is oldest.
//!
//! LRU-K distinguishes items with genuine reuse (K or more references)
//! from one-shot items: an item seen fewer than K times has backward
//! K-distance ∞ and is evicted first (ties broken by oldest last
//! reference). `K = 2` is the classic database-buffer setting.

use crate::slab::{KeyTable, Universe};
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, ItemId};
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Per-item reference history (most recent last, at most K entries).
#[derive(Clone, Debug)]
struct History {
    times: VecDeque<u64>,
}

/// The LRU-K replacement policy (item-granular).
#[derive(Clone, Debug)]
pub struct LruK {
    capacity: usize,
    k: usize,
    clock: u64,
    entries: KeyTable<History>,
    /// Eviction order: (kth-most-recent time with 0 = "fewer than K refs",
    /// most-recent time, item). The BTreeSet minimum is the victim.
    order: BTreeSet<(u64, u64, ItemId)>,
    /// Reference histories of recently evicted items (O'Neil et al.'s
    /// *Retained Information Period*): without it, a reloaded item restarts
    /// as a singleton and LRU-K degenerates to LRU under thrashing.
    retained: KeyTable<History>,
    retained_order: crate::lru_list::LruList,
}

impl LruK {
    /// An LRU-K cache of `capacity` items tracking the last `k` references.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `k == 0`.
    pub fn new(capacity: usize, k: usize) -> Self {
        Self::with_universe(capacity, k, &Universe::sparse())
    }

    /// An LRU-K cache whose history tables are backed by `universe`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `k == 0`.
    pub fn with_universe(capacity: usize, k: usize, universe: &Universe) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(k > 0, "K must be positive");
        LruK {
            capacity,
            k,
            clock: 0,
            entries: universe.item_table(),
            order: BTreeSet::new(),
            retained: universe.item_table(),
            retained_order: crate::lru_list::LruList::with_index(capacity, universe.item_index()),
        }
    }

    fn key_of(&self, history: &History, _item: ItemId) -> (u64, u64) {
        let newest = *history.times.back().expect("history never empty");
        let kth = if history.times.len() >= self.k {
            history.times[history.times.len() - self.k]
        } else {
            0 // backward K-distance ∞: first in line for eviction
        };
        (kth, newest)
    }
}

impl GcPolicy for LruK {
    fn name(&self) -> String {
        format!("LRU-{}(k={})", self.k, self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.entries.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        self.clock += 1;
        let k = self.k;
        if let Some(history) = self.entries.get_mut(item.0) {
            let key_of = |history: &History| {
                let newest = *history.times.back().expect("nonempty");
                let kth = if history.times.len() >= k {
                    history.times[history.times.len() - k]
                } else {
                    0
                };
                (kth, newest)
            };
            let old_key = key_of(history);
            self.order.remove(&(old_key.0, old_key.1, item));
            history.times.push_back(self.clock);
            while history.times.len() > k {
                history.times.pop_front();
            }
            let new_key = key_of(history);
            self.order.insert((new_key.0, new_key.1, item));
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.entries.len() == self.capacity {
            let &(kth, newest, victim) = self.order.iter().next().expect("full cache");
            self.order.remove(&(kth, newest, victim));
            let history = self
                .entries
                .remove(victim.0)
                .expect("ordered item resident");
            // Retain the victim's history for a while (bounded LRU).
            self.retained.insert(victim.0, history);
            self.retained_order.touch(victim.0);
            while self.retained_order.len() > self.capacity {
                let stale = self.retained_order.evict_lru().expect("nonempty");
                self.retained.remove(stale);
            }
            out.evicted.push(victim);
        }
        // Resurrect retained history if we have it.
        let mut history = if let Some(old) = self.retained.remove(item.0) {
            self.retained_order.remove(item.0);
            old
        } else {
            History {
                times: VecDeque::with_capacity(self.k),
            }
        };
        history.times.push_back(self.clock);
        while history.times.len() > self.k {
            history.times.pop_front();
        }
        let key = self.key_of(&history, item);
        self.order.insert((key.0, key.1, item));
        self.entries.insert(item.0, history);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.clock = 0;
        self.entries.clear();
        self.order.clear();
        self.retained.clear();
        self.retained_order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_referenced_items_evicted_before_reused_ones() {
        let mut c = LruK::new(3, 2);
        c.access(ItemId(1));
        c.access(ItemId(1)); // 1 has 2 refs
        c.access(ItemId(2)); // 1 ref
        c.access(ItemId(3)); // 1 ref
        let r = c.access(ItemId(4));
        // Victim must be 2 (singleton with the oldest last reference),
        // even though 1 is the least *recently* used overall? — no: 1 was
        // touched twice early. LRU would evict 1; LRU-2 evicts 2.
        assert_eq!(r.evicted(), &[ItemId(2)]);
        assert!(c.contains(ItemId(1)));
    }

    #[test]
    fn k1_degenerates_to_lru() {
        use crate::item::ItemLru;
        let mut lruk = LruK::new(5, 1);
        let mut lru = ItemLru::new(5);
        let mut x = 12u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = ItemId(x % 17);
            assert_eq!(lruk.access(item).is_hit(), lru.access(item).is_hit());
        }
    }

    #[test]
    fn scan_resistance_vs_lru() {
        use crate::item::ItemLru;
        // Hot set of 4 items with reuse + a 3-item one-shot scan burst per
        // round. LRU's recency order lets the burst push hot items out;
        // LRU-2 ranks the single-reference scanners below the hot set.
        let mut trace = Vec::new();
        for round in 0..200u64 {
            for hot in 0..4u64 {
                trace.push(hot);
            }
            for s in 0..3u64 {
                trace.push(1000 + round * 3 + s);
            }
        }
        let run = |mut p: Box<dyn GcPolicy>| {
            let mut misses = 0;
            for &id in &trace {
                if p.access(ItemId(id)).is_miss() {
                    misses += 1;
                }
            }
            misses
        };
        let lruk_misses = run(Box::new(LruK::new(5, 2)));
        let lru_misses = run(Box::new(ItemLru::new(5)));
        assert!(
            lruk_misses < lru_misses,
            "LRU-2 {lruk_misses} should beat LRU {lru_misses} under scan pollution"
        );
    }

    #[test]
    fn capacity_and_agreement_invariants() {
        let mut c = LruK::new(7, 2);
        let mut x = 3u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let item = ItemId(x % 30);
            let pre = c.contains(item);
            let r = c.access(item);
            assert_eq!(pre, r.is_hit());
            assert!(c.len() <= 7);
            for e in r.evicted() {
                assert!(!c.contains(*e));
            }
        }
    }

    #[test]
    fn history_window_is_bounded() {
        let mut c = LruK::new(2, 2);
        for _ in 0..100 {
            c.access(ItemId(1));
        }
        assert!(c.entries.get(1).unwrap().times.len() <= 2);
    }
}
