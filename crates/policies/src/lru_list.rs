//! An intrusive O(1) LRU list over slab storage.
//!
//! This is the shared recency engine for every LRU-ordered policy in the
//! crate. Keys are raw `u64`s so the same structure serves item-granular
//! caches ([`ItemId`](gc_types::ItemId) indices) and block-granular caches
//! ([`BlockId`](gc_types::BlockId) indices). All operations are O(1)
//! expected: entries live in a slab `Vec`, linked by index, with a
//! [`KeyIndex`] from key to slot — a hash map for sparse keys, a direct
//! array load when the trace was compiled to a dense universe.

use crate::slab::KeyIndex;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Slot {
    key: u64,
    prev: u32,
    next: u32,
}

/// An LRU-ordered set of `u64` keys with O(1) touch/insert/evict.
#[derive(Clone, Debug)]
pub struct LruList {
    slots: Vec<Slot>,
    map: KeyIndex,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot.
    tail: u32,
    /// Head of the free list (chained through `next`).
    free: u32,
}

impl Default for LruList {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl LruList {
    /// An empty list with capacity hint `cap`, hash-backed (sparse keys).
    pub fn with_capacity(cap: usize) -> Self {
        let mut map = gc_types::FxHashMap::default();
        map.reserve(cap);
        Self::with_index(cap, KeyIndex::Sparse(map))
    }

    /// An empty list with capacity hint `cap` whose key→slot map is the
    /// given [`KeyIndex`] — pass a dense index (e.g. from
    /// [`Universe::item_index`](crate::slab::Universe::item_index)) to make
    /// every probe a direct array load.
    pub fn with_index(cap: usize, index: KeyIndex) -> Self {
        LruList {
            slots: Vec::with_capacity(cap),
            map: index,
            head: NIL,
            tail: NIL,
            free: NIL,
        }
    }

    /// Number of keys present.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    /// Mark `key` most-recently-used, inserting it if absent.
    ///
    /// Returns `true` if the key was newly inserted.
    #[inline]
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(slot) = self.map.get(key) {
            self.unlink(slot);
            self.push_front(slot);
            false
        } else {
            let slot = self.alloc(key);
            self.push_front(slot);
            self.map.insert(key, slot);
            true
        }
    }

    /// Insert `key` at the *LRU* end if absent (used for cold insertions
    /// that should be first in line for eviction). Returns `true` if newly
    /// inserted; an existing key is left where it is.
    pub fn insert_cold(&mut self, key: u64) -> bool {
        if self.map.contains(key) {
            return false;
        }
        let slot = self.alloc(key);
        self.push_back(slot);
        self.map.insert(key, slot);
        true
    }

    /// Remove and return the least-recently-used key.
    #[inline]
    pub fn evict_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let key = self.slots[slot as usize].key;
        self.unlink(slot);
        self.release(slot);
        self.map.remove(key);
        Some(key)
    }

    /// The least-recently-used key, without removing it.
    #[inline]
    pub fn peek_lru(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.slots[self.tail as usize].key)
    }

    /// The most-recently-used key.
    #[inline]
    pub fn peek_mru(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.slots[self.head as usize].key)
    }

    /// Remove a specific key. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.map.remove(key) {
            self.unlink(slot);
            self.release(slot);
            true
        } else {
            false
        }
    }

    /// Drop all keys.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        self.free = NIL;
    }

    /// Keys from most- to least-recently used.
    pub fn iter_mru(&self) -> IterMru<'_> {
        IterMru {
            list: self,
            cursor: self.head,
        }
    }

    #[inline]
    fn alloc(&mut self, key: u64) -> u32 {
        if self.free != NIL {
            let slot = self.free;
            self.free = self.slots[slot as usize].next;
            self.slots[slot as usize] = Slot {
                key,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            let slot = self.slots.len() as u32;
            assert!(slot != NIL, "LruList slab overflow");
            self.slots.push(Slot {
                key,
                prev: NIL,
                next: NIL,
            });
            slot
        }
    }

    #[inline]
    fn release(&mut self, slot: u32) {
        self.slots[slot as usize].next = self.free;
        self.free = slot;
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = NIL;
    }

    #[inline]
    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    #[inline]
    fn push_back(&mut self, slot: u32) {
        self.slots[slot as usize].next = NIL;
        self.slots[slot as usize].prev = self.tail;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = slot;
        }
        self.tail = slot;
        if self.head == NIL {
            self.head = slot;
        }
    }
}

/// Iterator over keys from MRU to LRU. See [`LruList::iter_mru`].
pub struct IterMru<'a> {
    list: &'a LruList,
    cursor: u32,
}

impl Iterator for IterMru<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.list.slots[self.cursor as usize];
        self.cursor = slot.next;
        Some(slot.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_mru_first() {
        let mut l = LruList::with_capacity(4);
        assert!(l.touch(1));
        assert!(l.touch(2));
        assert!(l.touch(3));
        assert!(!l.touch(1)); // re-touch
        let order: Vec<u64> = l.iter_mru().collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(l.peek_mru(), Some(1));
        assert_eq!(l.peek_lru(), Some(2));
    }

    #[test]
    fn evict_lru_removes_oldest() {
        let mut l = LruList::with_capacity(4);
        l.touch(10);
        l.touch(20);
        l.touch(30);
        assert_eq!(l.evict_lru(), Some(10));
        assert_eq!(l.evict_lru(), Some(20));
        assert_eq!(l.len(), 1);
        assert!(l.contains(30));
    }

    #[test]
    fn evict_empty_is_none() {
        let mut l = LruList::default();
        assert_eq!(l.evict_lru(), None);
        assert_eq!(l.peek_lru(), None);
        assert_eq!(l.peek_mru(), None);
    }

    #[test]
    fn remove_specific_key() {
        let mut l = LruList::with_capacity(4);
        l.touch(1);
        l.touch(2);
        l.touch(3);
        assert!(l.remove(2));
        assert!(!l.remove(2));
        let order: Vec<u64> = l.iter_mru().collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LruList::with_capacity(4);
        l.touch(1);
        l.touch(2);
        l.touch(3); // order: 3 2 1
        assert!(l.remove(3)); // remove head
        assert_eq!(l.peek_mru(), Some(2));
        assert!(l.remove(1)); // remove tail
        assert_eq!(l.peek_lru(), Some(2));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn insert_cold_goes_to_lru_end() {
        let mut l = LruList::with_capacity(4);
        l.touch(1);
        l.touch(2);
        assert!(l.insert_cold(3));
        assert_eq!(l.peek_lru(), Some(3));
        assert!(!l.insert_cold(2)); // present: untouched
        let order: Vec<u64> = l.iter_mru().collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = LruList::with_capacity(2);
        for round in 0..100u64 {
            l.touch(round);
            if l.len() > 2 {
                l.evict_lru();
            }
        }
        // Only ever 3 live slots → slab stays small.
        assert!(l.slots.len() <= 4, "slab grew to {}", l.slots.len());
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = LruList::with_capacity(4);
        l.touch(1);
        l.touch(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.evict_lru(), None);
        l.touch(7);
        assert_eq!(l.iter_mru().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::default();
        l.touch(42);
        assert_eq!(l.peek_mru(), Some(42));
        assert_eq!(l.peek_lru(), Some(42));
        l.touch(42); // self re-touch must not corrupt links
        assert_eq!(l.len(), 1);
        assert_eq!(l.evict_lru(), Some(42));
        assert!(l.is_empty());
    }

    #[test]
    fn stress_against_reference_model() {
        // Differential test vs a naive Vec-based LRU.
        let mut fast = LruList::with_capacity(8);
        let mut slow: Vec<u64> = Vec::new(); // MRU at front
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 30;
            match x % 5 {
                0..=2 => {
                    fast.touch(key);
                    slow.retain(|&k| k != key);
                    slow.insert(0, key);
                }
                3 => {
                    assert_eq!(fast.evict_lru(), slow.pop(), "step {step}");
                }
                _ => {
                    let was = slow.contains(&key);
                    assert_eq!(fast.remove(key), was, "step {step}");
                    slow.retain(|&k| k != key);
                }
            }
            assert_eq!(fast.len(), slow.len(), "step {step}");
        }
        assert_eq!(fast.iter_mru().collect::<Vec<_>>(), slow);
    }

    #[test]
    fn dense_index_matches_sparse_index() {
        let mut sparse = LruList::with_capacity(8);
        let mut dense = LruList::with_index(8, KeyIndex::dense(30));
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 30;
            match x % 7 {
                0..=2 => assert_eq!(sparse.touch(key), dense.touch(key), "step {step}"),
                3 => assert_eq!(sparse.evict_lru(), dense.evict_lru(), "step {step}"),
                4 => assert_eq!(sparse.remove(key), dense.remove(key), "step {step}"),
                5 => assert_eq!(
                    sparse.insert_cold(key),
                    dense.insert_cold(key),
                    "step {step}"
                ),
                _ => {
                    if x % 97 == 0 {
                        sparse.clear();
                        dense.clear();
                    }
                    assert_eq!(sparse.peek_lru(), dense.peek_lru(), "step {step}");
                }
            }
        }
        assert_eq!(
            sparse.iter_mru().collect::<Vec<_>>(),
            dense.iter_mru().collect::<Vec<_>>()
        );
    }
}
