//! Granularity-Change Marking (GCM) — the paper's randomized policy (§6.1).
//!
//! GCM extends the classic marking algorithm to granularity change:
//!
//! * requested items are **marked**; evictions pick a uniformly random
//!   *unmarked* item, and a new phase (all marks cleared) starts only when
//!   every resident item is marked;
//! * on a miss, the **whole block is loaded but only the requested item is
//!   marked** — co-loaded items enter the cache as unmarked guests, so
//!   spatial guesses can never displace items with demonstrated temporal
//!   locality;
//! * in the common case where fewer than `B` unmarked lines remain, the
//!   requested item is loaded and the remaining unmarked lines are
//!   *replaced by* randomly chosen items of the accessed block.

use crate::slab::{KeyIndex, KeySet, Universe};
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockMap, ItemId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The GCM policy. See the module docs.
#[derive(Clone, Debug)]
pub struct Gcm {
    capacity: usize,
    map: BlockMap,
    /// Maximum co-loaded guests per miss (`B − 1` = full GCM, `0` = the
    /// classic marking algorithm). §6.2 raises — and leaves open — whether
    /// intermediate values help; the `randomized_relative` experiment
    /// explores the family.
    coload_limit: usize,
    /// If `true`, co-loaded guests are *marked* on load — the strawman
    /// §6.1 rejects ("a policy that loads and marks every item in the
    /// block also has issues": unused guests become unevictable until the
    /// next phase, shrinking the effective cache).
    mark_coloads: bool,
    marked: KeySet,
    /// Marking order of the current phase; the phase-change drain walks
    /// this so the unmark order (an input to the random victim choice) is
    /// identical for the sparse and dense backings.
    marked_order: Vec<ItemId>,
    /// Unmarked resident items in a vector for O(1) uniform choice.
    unmarked: Vec<ItemId>,
    unmarked_pos: KeyIndex,
    rng: SmallRng,
    /// Reusable buffer for the per-miss co-load candidate snapshot.
    co_buf: Vec<ItemId>,
}

impl Gcm {
    /// A GCM cache of `capacity` items over the given block partition.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, map: BlockMap, seed: u64) -> Self {
        let limit = map.max_block_size().saturating_sub(1);
        Self::with_coload_limit(capacity, map, seed, limit)
    }

    /// The §6.2 partial-loading family: co-load at most `coload_limit`
    /// random items of the accessed block per miss. `0` degenerates to the
    /// classic marking algorithm, `B − 1` is full GCM.
    pub fn with_coload_limit(
        capacity: usize,
        map: BlockMap,
        seed: u64,
        coload_limit: usize,
    ) -> Self {
        Self::with_options(capacity, map, seed, coload_limit, false)
    }

    /// Full configuration, including the §6.1 strawman `mark_coloads`
    /// (guests enter marked and cannot be evicted until the next phase).
    pub fn with_options(
        capacity: usize,
        map: BlockMap,
        seed: u64,
        coload_limit: usize,
        mark_coloads: bool,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let universe = Universe::of(&map);
        Gcm {
            capacity,
            map,
            coload_limit,
            mark_coloads,
            marked: universe.item_set(),
            marked_order: Vec::new(),
            unmarked: Vec::new(),
            unmarked_pos: universe.item_index(),
            rng: SmallRng::seed_from_u64(seed),
            co_buf: Vec::new(),
        }
    }

    /// The configured co-load limit.
    pub fn coload_limit(&self) -> usize {
        self.coload_limit
    }

    /// Number of currently marked items (for diagnostics/tests).
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    fn resident(&self, item: ItemId) -> bool {
        self.marked.contains(item.0) || self.unmarked_pos.contains(item.0)
    }

    fn mark(&mut self, item: ItemId) {
        if self.marked.insert(item.0) {
            self.marked_order.push(item);
        }
    }

    fn remove_unmarked_at(&mut self, pos: usize) -> ItemId {
        let victim = self.unmarked.swap_remove(pos);
        self.unmarked_pos.remove(victim.0);
        if pos < self.unmarked.len() {
            self.unmarked_pos.insert(self.unmarked[pos].0, pos as u32);
        }
        victim
    }

    fn take_unmarked(&mut self, item: ItemId) -> bool {
        if let Some(pos) = self.unmarked_pos.get(item.0) {
            self.remove_unmarked_at(pos as usize);
            true
        } else {
            false
        }
    }

    fn push_unmarked(&mut self, item: ItemId) {
        self.unmarked_pos.insert(item.0, self.unmarked.len() as u32);
        self.unmarked.push(item);
    }

    /// Evict one random unmarked item, starting a new phase if none exist.
    fn evict_one(&mut self) -> ItemId {
        if self.unmarked.is_empty() {
            // Phase change: all marks are cleared, in marking order.
            for &item in &self.marked_order {
                self.marked.remove(item.0);
                self.unmarked_pos.insert(item.0, self.unmarked.len() as u32);
                self.unmarked.push(item);
            }
            self.marked_order.clear();
        }
        let pos = self.rng.gen_range(0..self.unmarked.len());
        self.remove_unmarked_at(pos)
    }
}

impl GcPolicy for Gcm {
    fn name(&self) -> String {
        let b = self.map.max_block_size();
        if self.coload_limit >= b.saturating_sub(1) {
            format!("GCM(k={},B={b})", self.capacity)
        } else {
            format!("GCM(k={},B={b},j={})", self.capacity, self.coload_limit)
        }
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.marked.len() + self.unmarked.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.resident(item)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        // Resident: mark (promote out of the unmarked pool) and hit.
        if self.marked.contains(item.0) {
            return AccessKind::Hit;
        }
        if self.take_unmarked(item) {
            self.mark(item);
            return AccessKind::Hit;
        }

        // Snapshot the block's absent items *before* any eviction, so an
        // item evicted to make room is never re-loaded in the same access
        // (which would corrupt the load/evict accounting). The snapshot
        // lives in a policy-owned buffer; steady state never reallocates.
        let block = self.map.block_of(item);
        let mut co = std::mem::take(&mut self.co_buf);
        co.clear();
        co.extend(
            self.map
                .items_of(block)
                .filter(|&z| z != item && !self.resident(z)),
        );
        co.shuffle(&mut self.rng);

        // Miss: make room for the requested item, insert it marked.
        out.clear();
        if self.len() == self.capacity {
            let victim = self.evict_one();
            out.evicted.push(victim);
        }
        self.mark(item);
        out.loaded.push(item);

        // Co-load the rest of the block unmarked, replacing existing
        // unmarked lines when no free space remains. Evictions happen
        // before insertions so co-loaded guests never displace each other.
        let free = self.capacity - self.len();
        let take = co
            .len()
            .min(free + self.unmarked.len())
            .min(self.coload_limit);
        let need_evictions = take.saturating_sub(free);
        for _ in 0..need_evictions {
            let pos = self.rng.gen_range(0..self.unmarked.len());
            let victim = self.remove_unmarked_at(pos);
            out.evicted.push(victim);
        }
        for &z in &co[..take] {
            if self.mark_coloads {
                self.mark(z);
            } else {
                self.push_unmarked(z);
            }
            out.loaded.push(z);
        }
        self.co_buf = co;
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.marked.clear();
        self.marked_order.clear();
        self.unmarked.clear();
        self.unmarked_pos.clear();
        self.co_buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4() -> BlockMap {
        BlockMap::strided(4)
    }

    #[test]
    fn miss_coloads_block_unmarked() {
        let mut c = Gcm::new(8, map4(), 1);
        let r = c.access(ItemId(0));
        assert!(r.is_miss());
        assert_eq!(r.loaded().len(), 4, "whole block co-loads");
        assert_eq!(c.marked_count(), 1, "only the request is marked");
        // Sibling hits are spatial hits and mark the sibling.
        assert!(c.access(ItemId(1)).is_hit());
        assert_eq!(c.marked_count(), 2);
    }

    #[test]
    fn guests_never_displace_marked_items() {
        // Capacity 4, B = 4. Mark three items from distinct blocks, then
        // miss on a new block: only the single unmarked line may be
        // replaced, so exactly one co-item fits alongside the request...
        let mut c = Gcm::new(4, map4(), 2);
        c.access(ItemId(0)); // marks 0, co-loads 3 guests from block 0
        assert!(c.access(ItemId(1)).is_hit()); // marks 1
        assert!(c.access(ItemId(2)).is_hit()); // marks 2
                                               // marked {0,1,2}, one unmarked guest (item 3).
        let r = c.access(ItemId(4));
        assert!(r.is_miss());
        // Item 4 replaced the guest; zero free lines and zero unmarked left
        // means no co-loading beyond that.
        assert!(c.contains(ItemId(0)) && c.contains(ItemId(1)) && c.contains(ItemId(2)));
        assert!(c.contains(ItemId(4)));
        assert_eq!(c.len(), 4);
        assert_eq!(c.marked_count(), 4);
    }

    #[test]
    fn phase_resets_when_all_marked() {
        let mut c = Gcm::new(2, BlockMap::singleton(), 3);
        c.access(ItemId(1));
        c.access(ItemId(2)); // both marked (B=1: no co-loads)
        let r = c.access(ItemId(3)); // full + all marked → phase reset
        assert!(r.is_miss());
        assert_eq!(r.evicted().len(), 1);
        assert_eq!(c.len(), 2);
        // After the reset, 3 is marked; the surviving old item is unmarked.
        assert_eq!(c.marked_count(), 1);
    }

    #[test]
    fn singleton_blocks_match_classic_marking_structure() {
        // With B = 1, GCM is exactly the classic marking algorithm: no
        // co-loads ever.
        let mut c = Gcm::new(4, BlockMap::singleton(), 4);
        for id in 0..10u64 {
            let r = c.access(ItemId(id));
            assert_eq!(r.loaded().len(), 1);
        }
    }

    #[test]
    fn partial_coload_when_few_unmarked() {
        // Capacity 6, B=4. Fill with 5 marked + 1 unmarked, then miss:
        // the request loads and exactly one co-item replaces the last
        // unmarked line (the §6.1 special case).
        let mut c = Gcm::new(6, map4(), 5);
        c.access(ItemId(0));
        for id in [1u64, 2, 3] {
            assert!(c.access(ItemId(id)).is_hit());
        }
        // block 0 fully marked (4 marked). Load block 1's item 4:
        // free = 2 ⇒ 4 marked + 1 marked(4) + guests…
        let r = c.access(ItemId(4));
        assert!(r.is_miss());
        assert_eq!(c.len(), 6, "cache exactly full");
        assert!(c.marked_count() >= 5);
        // Guests loaded = min(3 co-items, free=1 + unmarked=0… after insert)
        assert!(r.loaded().len() >= 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let ids: Vec<u64> = (0..3000).map(|i| (i * 7919) % 256).collect();
        let run = |seed| {
            let mut c = Gcm::new(32, map4(), seed);
            ids.iter()
                .filter(|&&id| c.access(ItemId(id)).is_miss())
                .count()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = Gcm::new(10, map4(), 6);
        let mut x = 1u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(ItemId(x % 200));
            assert!(c.len() <= 10);
        }
    }

    #[test]
    fn contains_agrees_with_access() {
        let mut c = Gcm::new(12, map4(), 7);
        let mut x = 99u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let item = ItemId(x % 64);
            let pre = c.contains(item);
            assert_eq!(pre, c.access(item).is_hit());
        }
    }

    #[test]
    fn coload_limit_zero_never_coloads() {
        let mut c = Gcm::with_coload_limit(8, map4(), 3, 0);
        for id in 0..32u64 {
            let r = c.access(ItemId(id));
            assert_eq!(r.loaded().len(), 1, "classic marking never co-loads");
        }
        assert!(c.name().contains("j=0"));
    }

    #[test]
    fn coload_limit_caps_guests() {
        let mut c = Gcm::with_coload_limit(16, map4(), 4, 2);
        let r = c.access(ItemId(0));
        assert!(r.loaded().len() <= 3, "request + at most 2 guests");
        assert_eq!(c.coload_limit(), 2);
    }

    #[test]
    fn marked_coloads_pollute_sparse_working_sets() {
        // The §6.1 strawman: guests enter marked and pin garbage lines,
        // shrinking the cache on a sparse working set that plain GCM holds
        // entirely.
        let b = 8usize;
        let map = BlockMap::strided(b);
        let loop_items: Vec<u64> = (0..28u64).map(|i| i * b as u64).collect();
        let run = |mark: bool| {
            let mut c = Gcm::with_options(32, map.clone(), 5, b - 1, mark);
            let mut misses = 0u64;
            for (idx, &id) in loop_items.iter().cycle().take(8000).enumerate() {
                if c.access(ItemId(id)).is_miss() && idx >= 1000 {
                    misses += 1;
                }
            }
            misses
        };
        let gcm = run(false);
        let strawman = run(true);
        assert!(
            gcm * 5 < strawman.max(1),
            "unmarked co-loading must avoid pollution: gcm {gcm} vs strawman {strawman}"
        );
    }

    #[test]
    fn beats_plain_marking_on_streaming() {
        use crate::item::ItemMarking;
        let map = BlockMap::strided(8);
        let mut gcm = Gcm::new(32, map, 8);
        let mut plain = ItemMarking::new(32, 8);
        let mut gcm_misses = 0;
        let mut plain_misses = 0;
        for id in 0..4000u64 {
            if gcm.access(ItemId(id)).is_miss() {
                gcm_misses += 1;
            }
            if plain.access(ItemId(id)).is_miss() {
                plain_misses += 1;
            }
        }
        // §6.1: plain marking pays B× on block streaming.
        assert_eq!(plain_misses, 4000);
        assert!(gcm_misses <= 4000 / 7, "gcm {gcm_misses}");
    }
}
