//! Segmented LRU (SLRU) — an item cache with probationary and protected
//! segments (Karedla, Love & Wherry 1994).
//!
//! New items enter the *probationary* segment; a hit promotes an item to
//! the *protected* segment, whose overflow demotes back to probationary
//! MRU. One-shot items therefore never displace twice-touched ones. SLRU
//! is also the main-region structure of [`WTinyLfu`](crate::WTinyLfu).

use crate::lru_list::LruList;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, ItemId};

/// The SLRU replacement policy (item-granular).
#[derive(Clone, Debug)]
pub struct Slru {
    capacity: usize,
    protected_cap: usize,
    probationary: LruList,
    protected: LruList,
}

impl Slru {
    /// An SLRU of `capacity` items with the common 80%-protected tuning.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// An SLRU with default tuning whose segment indices are backed by
    /// `universe`.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self::with_protected_in(
            capacity,
            (capacity * 4 / 5).min(capacity.saturating_sub(1)),
            universe,
        )
    }

    /// An SLRU with an explicit protected-segment capacity
    /// (`protected < capacity`; the rest is probationary).
    pub fn with_protected(capacity: usize, protected_cap: usize) -> Self {
        Self::with_protected_in(capacity, protected_cap, &Universe::sparse())
    }

    /// An SLRU with explicit protected capacity and index backing.
    pub fn with_protected_in(capacity: usize, protected_cap: usize, universe: &Universe) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            protected_cap < capacity,
            "protected segment must leave probationary room"
        );
        Slru {
            capacity,
            protected_cap,
            probationary: LruList::with_index(capacity, universe.item_index()),
            protected: LruList::with_index(protected_cap, universe.item_index()),
        }
    }

    /// Promote an item into the protected segment, demoting its LRU back
    /// to probationary MRU if it overflows.
    fn promote(&mut self, item: ItemId) {
        if self.protected_cap == 0 {
            self.probationary.touch(item.0);
            return;
        }
        self.protected.touch(item.0);
        if self.protected.len() > self.protected_cap {
            let demoted = self
                .protected
                .evict_lru()
                .expect("overflow implies nonempty");
            self.probationary.touch(demoted);
        }
    }
}

impl GcPolicy for Slru {
    fn name(&self) -> String {
        format!("SLRU(k={},prot={})", self.capacity, self.protected_cap)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.probationary.len() + self.protected.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.probationary.contains(item.0) || self.protected.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if self.protected.contains(item.0) {
            self.protected.touch(item.0);
            return AccessKind::Hit;
        }
        if self.probationary.contains(item.0) {
            self.probationary.remove(item.0);
            self.promote(item);
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.len() == self.capacity {
            // Probationary LRU is the victim; if probationary is empty
            // (all-protected corner), fall back to protected LRU.
            let victim = self
                .probationary
                .evict_lru()
                .or_else(|| self.protected.evict_lru())
                .expect("cache full implies nonempty");
            out.evicted.push(ItemId(victim));
        }
        self.probationary.touch(item.0);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.probationary.clear();
        self.protected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_protects_reused_items() {
        let mut c = Slru::with_protected(4, 2);
        c.access(ItemId(1));
        c.access(ItemId(1)); // promoted to protected
                             // Scan three one-shot items: probationary churns, 1 survives.
        for id in [10u64, 11, 12, 13, 14] {
            c.access(ItemId(id));
        }
        assert!(c.contains(ItemId(1)), "protected item scanned out");
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut c = Slru::with_protected(4, 1);
        c.access(ItemId(1));
        c.access(ItemId(1)); // protected = [1]
        c.access(ItemId(2));
        c.access(ItemId(2)); // promotes 2, demotes 1 to probationary MRU
        assert!(c.contains(ItemId(1)));
        assert!(c.contains(ItemId(2)));
        // Next insertions evict probationary LRU; demoted 1 is MRU there,
        // so it outlives an older probationary resident.
        c.access(ItemId(3));
        c.access(ItemId(4)); // cache full: 1,2,3,4
        let r = c.access(ItemId(5));
        assert_eq!(r.evicted().len(), 1);
        assert!(
            c.contains(ItemId(2)),
            "protected untouched by miss evictions"
        );
    }

    #[test]
    fn default_tuning_valid_for_small_caches() {
        for capacity in 1..10usize {
            let mut c = Slru::new(capacity);
            for id in 0..50u64 {
                c.access(ItemId(id % 12));
                assert!(c.len() <= capacity);
            }
        }
    }

    #[test]
    fn contains_matches_access() {
        let mut c = Slru::new(6);
        let mut x = 5u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let item = ItemId(x % 20);
            let pre = c.contains(item);
            assert_eq!(pre, c.access(item).is_hit());
        }
    }

    #[test]
    fn evicted_items_are_gone() {
        use gc_types::AccessResult;
        let mut c = Slru::new(3);
        for id in 0..60u64 {
            if let AccessResult::Miss { evicted, .. } = c.access(ItemId(id % 9)) {
                for e in evicted {
                    assert!(!c.contains(e));
                }
            }
        }
    }
}
