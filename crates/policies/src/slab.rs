//! Slab-backed key state: dense `Vec`-indexed indices, sets, and tables
//! with generation checks, plus the sparse hash-map fallbacks.
//!
//! Every policy in this crate keys its replacement state by raw `u64` ids
//! (items or blocks). Against an arbitrary trace those keys are sparse and
//! a hash map is the only option — but when the trace has been *compiled*
//! ([`gc_types::CompiledTrace`]) the keys are dense `0..n`, and the map
//! collapses to a direct array load. The three structures here make that
//! switch a construction-time decision instead of a per-policy rewrite:
//!
//! * [`KeyIndex`] — `key → u32` position map (the `FxHashMap<u64, u32>`
//!   shape used by [`LruList`](crate::lru_list::LruList) and the item
//!   policies' position indices).
//! * [`KeySet`] — membership set (FIFO presence, marking sets).
//! * [`KeyTable`] — `key → V` map for fatter per-key state (LFU counters,
//!   LRU-K histories).
//!
//! The dense variants are **generation-stamped**: each slot carries the
//! epoch at which it was written, and `clear()` simply bumps the epoch —
//! O(1) instead of O(n) — while stale slots from earlier generations read
//! as absent. Debug builds assert that dense keys are in range, which
//! catches the classic slab bug (an id from one universe probed against
//! another's index) at the boundary instead of as silent corruption.
//!
//! [`Universe`] captures the dense-or-sparse decision once, from a
//! [`BlockMap`]: policies take it at construction and ask it for
//! appropriately-backed indices. The sparse path is the fallback for
//! uncompiled / streamed traces and stays bit-identical to the historic
//! hash-map implementation.

use gc_types::{BlockMap, FxHashMap, FxHashSet};
use std::sync::Arc;

/// First valid generation; stamp 0 always reads as absent.
const GEN_FIRST: u32 = 1;

/// The key-space a policy's state is built for: either the open sparse
/// `u64` space (hash-backed state) or a compiled dense universe of
/// `n_items` items / `n_blocks` blocks (array-backed state).
#[derive(Clone, Debug, Default)]
pub struct Universe {
    dense: Option<DenseInfo>,
}

#[derive(Clone, Debug)]
struct DenseInfo {
    n_items: usize,
    n_blocks: usize,
    decode: Arc<Vec<u64>>,
}

impl Universe {
    /// The open sparse key space (hash-map-backed state everywhere).
    pub fn sparse() -> Self {
        Universe { dense: None }
    }

    /// The universe of `map`: dense when the map was produced by trace
    /// compilation, sparse otherwise.
    pub fn of(map: &BlockMap) -> Self {
        Universe {
            dense: map.dense_universe().map(|d| DenseInfo {
                n_items: d.n_items() as usize,
                n_blocks: d.n_blocks() as usize,
                decode: Arc::clone(d.decode_table()),
            }),
        }
    }

    /// Whether this universe is dense.
    pub fn is_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// Dense item → original sparse id table (dense universes only).
    /// Sketches and samplers hash through this so their bucket choices
    /// match the uncompiled run bit for bit.
    pub fn decode(&self) -> Option<Arc<Vec<u64>>> {
        self.dense.as_ref().map(|d| Arc::clone(&d.decode))
    }

    /// A position index keyed by item ids.
    pub fn item_index(&self) -> KeyIndex {
        match &self.dense {
            Some(d) => KeyIndex::dense(d.n_items),
            None => KeyIndex::sparse(),
        }
    }

    /// A position index keyed by block ids.
    pub fn block_index(&self) -> KeyIndex {
        match &self.dense {
            Some(d) => KeyIndex::dense(d.n_blocks),
            None => KeyIndex::sparse(),
        }
    }

    /// A membership set keyed by item ids.
    pub fn item_set(&self) -> KeySet {
        match &self.dense {
            Some(d) => KeySet::dense(d.n_items),
            None => KeySet::sparse(),
        }
    }

    /// A membership set keyed by block ids.
    pub fn block_set(&self) -> KeySet {
        match &self.dense {
            Some(d) => KeySet::dense(d.n_blocks),
            None => KeySet::sparse(),
        }
    }

    /// A value table keyed by item ids.
    pub fn item_table<V>(&self) -> KeyTable<V> {
        match &self.dense {
            Some(d) => KeyTable::dense(d.n_items),
            None => KeyTable::sparse(),
        }
    }

    /// Number of dense items, if dense.
    pub fn n_items(&self) -> Option<usize> {
        self.dense.as_ref().map(|d| d.n_items)
    }

    /// Number of dense blocks, if dense.
    pub fn n_blocks(&self) -> Option<usize> {
        self.dense.as_ref().map(|d| d.n_blocks)
    }
}

/// `key → u32` position map: hash-backed for sparse keys, a flat
/// generation-stamped `Vec` for dense keys.
#[derive(Clone, Debug)]
pub enum KeyIndex {
    /// Open key space: hash probe per lookup.
    Sparse(FxHashMap<u64, u32>),
    /// Dense `0..n` key space: one array load per lookup.
    Dense {
        /// Per-key `(position, generation)` slots.
        slots: Vec<IndexSlot>,
        /// Current generation; a slot is live iff its stamp matches.
        generation: u32,
        /// Live entries.
        len: usize,
    },
}

/// One dense [`KeyIndex`] slot: the stored position and the generation
/// stamp that validates it.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexSlot {
    pos: u32,
    generation: u32,
}

impl KeyIndex {
    /// An empty hash-backed index.
    pub fn sparse() -> Self {
        KeyIndex::Sparse(FxHashMap::default())
    }

    /// An empty dense index over keys `0..n`.
    pub fn dense(n: usize) -> Self {
        KeyIndex::Dense {
            slots: vec![IndexSlot::default(); n],
            generation: GEN_FIRST,
            len: 0,
        }
    }

    /// The position stored for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        match self {
            KeyIndex::Sparse(map) => map.get(&key).copied(),
            KeyIndex::Dense {
                slots, generation, ..
            } => {
                let slot = slots.get(key as usize)?;
                (slot.generation == *generation).then_some(slot.pos)
            }
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Store `pos` for `key`, returning the previous position if any.
    #[inline]
    pub fn insert(&mut self, key: u64, pos: u32) -> Option<u32> {
        match self {
            KeyIndex::Sparse(map) => map.insert(key, pos),
            KeyIndex::Dense {
                slots,
                generation,
                len,
            } => {
                debug_assert!(
                    (key as usize) < slots.len(),
                    "key {key} outside dense universe of {}",
                    slots.len()
                );
                let slot = &mut slots[key as usize];
                let old = (slot.generation == *generation).then_some(slot.pos);
                *slot = IndexSlot {
                    pos,
                    generation: *generation,
                };
                if old.is_none() {
                    *len += 1;
                }
                old
            }
        }
    }

    /// Remove `key`, returning its position if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        match self {
            KeyIndex::Sparse(map) => map.remove(&key),
            KeyIndex::Dense {
                slots,
                generation,
                len,
            } => {
                let slot = slots.get_mut(key as usize)?;
                if slot.generation != *generation {
                    return None;
                }
                slot.generation = 0;
                *len -= 1;
                Some(slot.pos)
            }
        }
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            KeyIndex::Sparse(map) => map.len(),
            KeyIndex::Dense { len, .. } => *len,
        }
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries. O(1) for dense indices (generation bump).
    pub fn clear(&mut self) {
        match self {
            KeyIndex::Sparse(map) => map.clear(),
            KeyIndex::Dense {
                slots,
                generation,
                len,
            } => {
                *generation = match generation.checked_add(1) {
                    Some(g) => g,
                    None => {
                        // Generation wrapped (2^32 clears): hard-reset the
                        // stamps so no stale slot can alias the new epoch.
                        slots.fill(IndexSlot::default());
                        GEN_FIRST
                    }
                };
                *len = 0;
            }
        }
    }
}

/// Membership set over `u64` keys: hash-backed or generation-stamped.
#[derive(Clone, Debug)]
pub enum KeySet {
    /// Open key space.
    Sparse(FxHashSet<u64>),
    /// Dense `0..n` key space: one stamp load per probe.
    Dense {
        /// Per-key generation stamps; a key is present iff its stamp
        /// matches the current generation.
        stamps: Vec<u32>,
        /// Current generation.
        generation: u32,
        /// Live entries.
        len: usize,
    },
}

impl KeySet {
    /// An empty hash-backed set.
    pub fn sparse() -> Self {
        KeySet::Sparse(FxHashSet::default())
    }

    /// An empty dense set over keys `0..n`.
    pub fn dense(n: usize) -> Self {
        KeySet::Dense {
            stamps: vec![0; n],
            generation: GEN_FIRST,
            len: 0,
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        match self {
            KeySet::Sparse(set) => set.contains(&key),
            KeySet::Dense {
                stamps, generation, ..
            } => stamps.get(key as usize) == Some(generation),
        }
    }

    /// Insert `key`; returns `true` if newly inserted.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        match self {
            KeySet::Sparse(set) => set.insert(key),
            KeySet::Dense {
                stamps,
                generation,
                len,
            } => {
                debug_assert!(
                    (key as usize) < stamps.len(),
                    "key {key} outside dense universe of {}",
                    stamps.len()
                );
                let stamp = &mut stamps[key as usize];
                if *stamp == *generation {
                    false
                } else {
                    *stamp = *generation;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Remove `key`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        match self {
            KeySet::Sparse(set) => set.remove(&key),
            KeySet::Dense {
                stamps,
                generation,
                len,
            } => match stamps.get_mut(key as usize) {
                Some(stamp) if *stamp == *generation => {
                    *stamp = 0;
                    *len -= 1;
                    true
                }
                _ => false,
            },
        }
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            KeySet::Sparse(set) => set.len(),
            KeySet::Dense { len, .. } => *len,
        }
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries. O(1) for dense sets (generation bump).
    pub fn clear(&mut self) {
        match self {
            KeySet::Sparse(set) => set.clear(),
            KeySet::Dense {
                stamps,
                generation,
                len,
            } => {
                *generation = match generation.checked_add(1) {
                    Some(g) => g,
                    None => {
                        stamps.fill(0);
                        GEN_FIRST
                    }
                };
                *len = 0;
            }
        }
    }
}

/// `key → V` table for fatter per-key state: hash-backed or a flat
/// generation-stamped `Vec<Option<V>>`.
///
/// Dense slots are *retained* across [`clear`](KeyTable::clear) (the
/// generation bump makes them unreadable); their allocations are reused by
/// later inserts, arena-style.
#[derive(Clone, Debug)]
pub enum KeyTable<V> {
    /// Open key space.
    Sparse(FxHashMap<u64, V>),
    /// Dense `0..n` key space.
    Dense {
        /// Per-key generation stamps; the value is live iff its stamp
        /// matches the current generation.
        stamps: Vec<u32>,
        /// Per-key values (stale ones linger until overwritten).
        values: Vec<Option<V>>,
        /// Current generation.
        generation: u32,
        /// Live entries.
        len: usize,
    },
}

impl<V> KeyTable<V> {
    /// An empty hash-backed table.
    pub fn sparse() -> Self {
        KeyTable::Sparse(FxHashMap::default())
    }

    /// An empty dense table over keys `0..n`.
    pub fn dense(n: usize) -> Self {
        let mut values = Vec::new();
        values.resize_with(n, || None);
        KeyTable::Dense {
            stamps: vec![0; n],
            values,
            generation: GEN_FIRST,
            len: 0,
        }
    }

    /// The value stored for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        match self {
            KeyTable::Sparse(map) => map.get(&key),
            KeyTable::Dense {
                stamps,
                values,
                generation,
                ..
            } => {
                if stamps.get(key as usize) == Some(generation) {
                    values[key as usize].as_ref()
                } else {
                    None
                }
            }
        }
    }

    /// Mutable access to the value stored for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self {
            KeyTable::Sparse(map) => map.get_mut(&key),
            KeyTable::Dense {
                stamps,
                values,
                generation,
                ..
            } => {
                if stamps.get(key as usize) == Some(generation) {
                    values[key as usize].as_mut()
                } else {
                    None
                }
            }
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Store `value` for `key`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match self {
            KeyTable::Sparse(map) => map.insert(key, value),
            KeyTable::Dense {
                stamps,
                values,
                generation,
                len,
            } => {
                debug_assert!(
                    (key as usize) < stamps.len(),
                    "key {key} outside dense universe of {}",
                    stamps.len()
                );
                let live = stamps[key as usize] == *generation;
                stamps[key as usize] = *generation;
                let old = values[key as usize].replace(value);
                if live {
                    old
                } else {
                    *len += 1;
                    None
                }
            }
        }
    }

    /// Remove `key`, returning its value if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<V> {
        match self {
            KeyTable::Sparse(map) => map.remove(&key),
            KeyTable::Dense {
                stamps,
                values,
                generation,
                len,
            } => match stamps.get_mut(key as usize) {
                Some(stamp) if *stamp == *generation => {
                    *stamp = 0;
                    *len -= 1;
                    values[key as usize].take()
                }
                _ => None,
            },
        }
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            KeyTable::Sparse(map) => map.len(),
            KeyTable::Dense { len, .. } => *len,
        }
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries. O(1) for dense tables (generation bump; stale
    /// values linger until their slot is reused).
    pub fn clear(&mut self) {
        match self {
            KeyTable::Sparse(map) => map.clear(),
            KeyTable::Dense {
                stamps,
                values,
                generation,
                len,
            } => {
                *generation = match generation.checked_add(1) {
                    Some(g) => g,
                    None => {
                        stamps.fill(0);
                        values.iter_mut().for_each(|v| *v = None);
                        GEN_FIRST
                    }
                };
                *len = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_pair() -> [KeyIndex; 2] {
        [KeyIndex::sparse(), KeyIndex::dense(64)]
    }

    #[test]
    fn index_insert_get_remove_both_backings() {
        for mut idx in index_pair() {
            assert_eq!(idx.get(3), None);
            assert_eq!(idx.insert(3, 7), None);
            assert_eq!(idx.insert(5, 9), None);
            assert_eq!(idx.len(), 2);
            assert_eq!(idx.get(3), Some(7));
            assert_eq!(idx.insert(3, 8), Some(7), "overwrite returns old");
            assert_eq!(idx.len(), 2);
            assert_eq!(idx.remove(3), Some(8));
            assert_eq!(idx.remove(3), None);
            assert_eq!(idx.len(), 1);
            assert!(idx.contains(5) && !idx.contains(3));
        }
    }

    #[test]
    fn index_clear_is_generation_bump() {
        let mut idx = KeyIndex::dense(8);
        idx.insert(1, 10);
        idx.insert(2, 20);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.get(1), None, "stale generation must read absent");
        idx.insert(1, 30);
        assert_eq!(idx.get(1), Some(30));
        assert_eq!(idx.get(2), None);
    }

    #[test]
    fn set_basic_both_backings() {
        for mut set in [KeySet::sparse(), KeySet::dense(32)] {
            assert!(set.insert(4));
            assert!(!set.insert(4));
            assert!(set.contains(4));
            assert_eq!(set.len(), 1);
            assert!(set.remove(4));
            assert!(!set.remove(4));
            assert!(set.is_empty());
            set.insert(9);
            set.clear();
            assert!(!set.contains(9));
        }
    }

    #[test]
    fn table_basic_both_backings() {
        for mut t in [KeyTable::<String>::sparse(), KeyTable::<String>::dense(16)] {
            assert_eq!(t.insert(2, "a".into()), None);
            assert_eq!(t.insert(2, "b".into()), Some("a".into()));
            assert_eq!(t.get(2).map(String::as_str), Some("b"));
            t.get_mut(2).unwrap().push('!');
            assert_eq!(t.remove(2).as_deref(), Some("b!"));
            assert_eq!(t.remove(2), None);
            assert!(t.is_empty());
        }
    }

    #[test]
    fn table_clear_hides_stale_values() {
        let mut t = KeyTable::<u32>::dense(4);
        t.insert(0, 11);
        t.clear();
        assert_eq!(t.get(0), None);
        assert_eq!(t.insert(0, 22), None, "stale value must not resurface");
        assert_eq!(t.get(0), Some(&22));
    }

    #[test]
    fn dense_out_of_range_reads_are_absent() {
        let idx = KeyIndex::dense(4);
        assert_eq!(idx.get(100), None);
        let set = KeySet::dense(4);
        assert!(!set.contains(100));
        let t = KeyTable::<u8>::dense(4);
        assert_eq!(t.get(100), None);
    }

    #[test]
    fn universe_of_sparse_map_is_sparse() {
        let u = Universe::of(&BlockMap::strided(4));
        assert!(!u.is_dense());
        assert!(matches!(u.item_index(), KeyIndex::Sparse(_)));
        assert!(u.decode().is_none());
    }

    #[test]
    fn universe_of_compiled_map_is_dense() {
        use gc_types::{CompiledTrace, Trace};
        let ct =
            CompiledTrace::compile(&Trace::from_ids([0, 9, 100]), &BlockMap::strided(4)).unwrap();
        let u = Universe::of(ct.map());
        assert!(u.is_dense());
        assert_eq!(u.n_items(), Some(12));
        assert_eq!(u.n_blocks(), Some(3));
        assert!(matches!(u.item_index(), KeyIndex::Dense { .. }));
        assert_eq!(u.decode().unwrap().len(), 12);
    }

    #[test]
    fn differential_index_sparse_vs_dense() {
        let mut sparse = KeyIndex::sparse();
        let mut dense = KeyIndex::dense(40);
        let mut x = 0x9E37_79B9u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 40;
            match x % 7 {
                0..=2 => assert_eq!(
                    sparse.insert(key, (x % 97) as u32),
                    dense.insert(key, (x % 97) as u32)
                ),
                3..=4 => assert_eq!(sparse.remove(key), dense.remove(key)),
                5 => assert_eq!(sparse.get(key), dense.get(key)),
                _ => {
                    if x % 101 == 0 {
                        sparse.clear();
                        dense.clear();
                    }
                    assert_eq!(sparse.len(), dense.len());
                }
            }
        }
    }
}
