//! Policy construction by name — the registry used by the CLI, the sweep
//! harness, and the benchmarks.

use crate::{
    AdaptiveIblp, BlockFifo, BlockLru, GcPolicy, Gcm, Iblp, ItemClock, ItemFifo, ItemLfu, ItemLru,
    ItemMarking, ItemRandom, LruK, Slru, ThresholdLoad, TwoQ, Universe, WTinyLfu,
};
use gc_types::{BlockMap, GcError};
use std::fmt;

/// A buildable policy description.
///
/// `PolicyKind` is `Clone + Eq` and cheap, so sweep configurations can
/// carry lists of kinds and instantiate fresh policies per (trace, size)
/// combination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`ItemLru`].
    ItemLru,
    /// [`ItemFifo`].
    ItemFifo,
    /// [`ItemClock`].
    ItemClock,
    /// [`ItemLfu`].
    ItemLfu,
    /// [`ItemRandom`] with an RNG seed.
    ItemRandom {
        /// RNG seed.
        seed: u64,
    },
    /// [`ItemMarking`] with an RNG seed.
    ItemMarking {
        /// RNG seed.
        seed: u64,
    },
    /// [`BlockLru`].
    BlockLru,
    /// [`BlockFifo`].
    BlockFifo,
    /// [`Iblp`] with an even item/block split.
    IblpBalanced,
    /// [`Iblp`] with an explicit item-layer size; the block layer gets the
    /// remaining lines.
    Iblp {
        /// Item-layer size `i` in lines.
        item_lines: usize,
    },
    /// [`Gcm`] with an RNG seed.
    Gcm {
        /// RNG seed.
        seed: u64,
    },
    /// [`ThresholdLoad`] with parameter `a`.
    ThresholdLoad {
        /// The `a` parameter of Theorem 4.
        a: usize,
    },
    /// [`TwoQ`].
    TwoQ,
    /// [`Slru`] with the default 80%-protected tuning.
    Slru,
    /// [`LruK`] with history depth `k`.
    LruK {
        /// History depth (2 is the classic setting).
        k: usize,
    },
    /// [`WTinyLfu`].
    WTinyLfu,
    /// [`AdaptiveIblp`].
    AdaptiveIblp,
    /// [`Gcm`] restricted to at most `coload` guests per miss (§6.2's
    /// partial-loading family).
    PartialGcm {
        /// RNG seed.
        seed: u64,
        /// Maximum co-loaded guests per miss.
        coload: usize,
    },
}

impl PolicyKind {
    /// Instantiate the policy with total capacity `capacity` over `map`.
    ///
    /// Equivalent to [`build_send`](Self::build_send) with the `Send`
    /// bound erased; kept for single-threaded callers and trait-object
    /// collections that never cross threads.
    pub fn build(&self, capacity: usize, map: &BlockMap) -> Box<dyn GcPolicy> {
        self.build_send(capacity, map)
    }

    /// Instantiate the policy as a `Send` trait object.
    ///
    /// This is the constructor the concurrent runtime uses to build one
    /// policy **per shard**: every policy owns its full replacement state
    /// (its `BlockMap` is `Arc`-backed and shared structurally, never
    /// cloned deep) and its RNG, so instances can be moved onto worker
    /// threads freely. Nothing here assumes single-threaded construction —
    /// there is no shared scratch; the per-access
    /// [`AccessScratch`](gc_types::AccessScratch) is caller-owned and
    /// lives with whoever drives the policy (one per shard in the
    /// runtime, one per simulation in the engine), so building `S` shards
    /// never clones traces or shares mutable buffers.
    pub fn build_send(&self, capacity: usize, map: &BlockMap) -> Box<dyn GcPolicy + Send> {
        // Computed once per build: dense (slab-backed) when the map carries a
        // compiled universe, sparse (hash-backed) otherwise. The map-taking
        // policies below derive the same universe internally from their map.
        let universe = Universe::of(map);
        match *self {
            PolicyKind::ItemLru => Box::new(ItemLru::with_universe(capacity, &universe)),
            PolicyKind::ItemFifo => Box::new(ItemFifo::with_universe(capacity, &universe)),
            PolicyKind::ItemClock => Box::new(ItemClock::with_universe(capacity, &universe)),
            PolicyKind::ItemLfu => Box::new(ItemLfu::with_universe(capacity, &universe)),
            PolicyKind::ItemRandom { seed } => {
                Box::new(ItemRandom::with_universe(capacity, seed, &universe))
            }
            PolicyKind::ItemMarking { seed } => {
                Box::new(ItemMarking::with_universe(capacity, seed, &universe))
            }
            PolicyKind::BlockLru => Box::new(BlockLru::new(capacity, map.clone())),
            PolicyKind::BlockFifo => Box::new(BlockFifo::new(capacity, map.clone())),
            PolicyKind::IblpBalanced => Box::new(Iblp::balanced(capacity, map.clone())),
            PolicyKind::Iblp { item_lines } => {
                let i = item_lines.min(capacity.saturating_sub(map.max_block_size()));
                Box::new(Iblp::new(i.max(1), capacity - i.max(1), map.clone()))
            }
            PolicyKind::Gcm { seed } => Box::new(Gcm::new(capacity, map.clone(), seed)),
            PolicyKind::ThresholdLoad { a } => {
                // Clamp a into [1, B] so rosters parameterized by a stay
                // buildable across block sizes.
                let a = a.clamp(1, map.max_block_size());
                Box::new(ThresholdLoad::new(capacity, a, map.clone()))
            }
            PolicyKind::TwoQ => Box::new(TwoQ::with_universe(capacity, &universe)),
            PolicyKind::Slru => Box::new(Slru::with_universe(capacity, &universe)),
            PolicyKind::LruK { k } => Box::new(LruK::with_universe(capacity, k.max(1), &universe)),
            PolicyKind::WTinyLfu => Box::new(WTinyLfu::with_universe(capacity, &universe)),
            PolicyKind::AdaptiveIblp => Box::new(AdaptiveIblp::new(capacity, map.clone())),
            PolicyKind::PartialGcm { seed, coload } => {
                Box::new(Gcm::with_coload_limit(capacity, map.clone(), seed, coload))
            }
        }
    }

    /// Short stable label (used in CSV headers and CLI output).
    ///
    /// Prefer the [`Display`](std::fmt::Display) impl when writing into an
    /// existing buffer — it formats the same label without allocating.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parse a label produced by [`label`](Self::label) / `Display` (plus `seed=`
    /// parameters for the randomized policies), e.g. `item-lru`,
    /// `iblp:i=4096`, `loadk:a=2`, `gcm:seed=7`.
    pub fn parse(s: &str) -> Result<Self, GcError> {
        let (name, args) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let parse_u64 = |args: Option<&str>, key: &str, default: u64| -> Result<u64, GcError> {
            match args {
                None => Ok(default),
                Some(a) => match a.split_once('=') {
                    Some((k, v)) if k == key => v
                        .parse()
                        .map_err(|_| GcError::InvalidParameter(format!("bad {key} in {s:?}"))),
                    _ => Err(GcError::InvalidParameter(format!(
                        "expected {key}=<n> in {s:?}"
                    ))),
                },
            }
        };
        match name {
            "item-lru" => Ok(PolicyKind::ItemLru),
            "item-fifo" => Ok(PolicyKind::ItemFifo),
            "item-clock" => Ok(PolicyKind::ItemClock),
            "item-lfu" => Ok(PolicyKind::ItemLfu),
            "item-random" => Ok(PolicyKind::ItemRandom {
                seed: parse_u64(args, "seed", 0)?,
            }),
            "item-marking" => Ok(PolicyKind::ItemMarking {
                seed: parse_u64(args, "seed", 0)?,
            }),
            "block-lru" => Ok(PolicyKind::BlockLru),
            "block-fifo" => Ok(PolicyKind::BlockFifo),
            "iblp" => match args {
                None => Ok(PolicyKind::IblpBalanced),
                Some(_) => Ok(PolicyKind::Iblp {
                    item_lines: parse_u64(args, "i", 0)? as usize,
                }),
            },
            "gcm" => Ok(PolicyKind::Gcm {
                seed: parse_u64(args, "seed", 0)?,
            }),
            "loadk" => Ok(PolicyKind::ThresholdLoad {
                a: parse_u64(args, "a", 1)? as usize,
            }),
            "2q" => Ok(PolicyKind::TwoQ),
            "slru" => Ok(PolicyKind::Slru),
            "lru-k" => Ok(PolicyKind::LruK {
                k: parse_u64(args, "k", 2)? as usize,
            }),
            "tinylfu" => Ok(PolicyKind::WTinyLfu),
            "adaptive-iblp" => Ok(PolicyKind::AdaptiveIblp),
            "gcm-partial" => Ok(PolicyKind::PartialGcm {
                seed: 0,
                coload: parse_u64(args, "j", 1)? as usize,
            }),
            _ => Err(GcError::InvalidParameter(format!("unknown policy {s:?}"))),
        }
    }

    /// The standard comparison roster: the paper's three protagonists plus
    /// the classic baselines.
    pub fn standard_roster(seed: u64) -> Vec<PolicyKind> {
        vec![
            PolicyKind::ItemLru,
            PolicyKind::ItemFifo,
            PolicyKind::ItemClock,
            PolicyKind::ItemLfu,
            PolicyKind::ItemMarking { seed },
            PolicyKind::BlockLru,
            PolicyKind::IblpBalanced,
            PolicyKind::Gcm { seed },
            PolicyKind::ThresholdLoad { a: 1 },
        ]
    }

    /// The extended roster: the standard roster plus the scan-resistant
    /// item caches and the adaptive IBLP extension.
    pub fn extended_roster(seed: u64) -> Vec<PolicyKind> {
        let mut roster = Self::standard_roster(seed);
        roster.extend([
            PolicyKind::TwoQ,
            PolicyKind::Slru,
            PolicyKind::LruK { k: 2 },
            PolicyKind::WTinyLfu,
            PolicyKind::AdaptiveIblp,
        ]);
        roster
    }
}

/// Writes the same short stable label as [`PolicyKind::label`], directly
/// into the formatter — no intermediate `String`, so hot CSV/report writers
/// can emit rows without per-row allocation.
impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::ItemLru => f.write_str("item-lru"),
            PolicyKind::ItemFifo => f.write_str("item-fifo"),
            PolicyKind::ItemClock => f.write_str("item-clock"),
            PolicyKind::ItemLfu => f.write_str("item-lfu"),
            PolicyKind::ItemRandom { .. } => f.write_str("item-random"),
            PolicyKind::ItemMarking { .. } => f.write_str("item-marking"),
            PolicyKind::BlockLru => f.write_str("block-lru"),
            PolicyKind::BlockFifo => f.write_str("block-fifo"),
            PolicyKind::IblpBalanced => f.write_str("iblp"),
            PolicyKind::Iblp { item_lines } => write!(f, "iblp:i={item_lines}"),
            PolicyKind::Gcm { .. } => f.write_str("gcm"),
            PolicyKind::ThresholdLoad { a } => write!(f, "loadk:a={a}"),
            PolicyKind::TwoQ => f.write_str("2q"),
            PolicyKind::Slru => f.write_str("slru"),
            PolicyKind::LruK { k } => write!(f, "lru-k:k={k}"),
            PolicyKind::WTinyLfu => f.write_str("tinylfu"),
            PolicyKind::AdaptiveIblp => f.write_str("adaptive-iblp"),
            PolicyKind::PartialGcm { coload, .. } => write!(f, "gcm-partial:j={coload}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_types::ItemId;

    #[test]
    fn build_all_kinds() {
        let map = BlockMap::strided(4);
        for kind in PolicyKind::standard_roster(1) {
            let mut p = kind.build(16, &map);
            assert!(p.access(ItemId(0)).is_miss(), "{}", p.name());
            assert!(p.access(ItemId(0)).is_hit(), "{}", p.name());
            assert_eq!(p.capacity(), 16);
        }
    }

    #[test]
    fn parse_roundtrips_labels() {
        for kind in [
            PolicyKind::ItemLru,
            PolicyKind::ItemFifo,
            PolicyKind::ItemClock,
            PolicyKind::ItemLfu,
            PolicyKind::BlockLru,
            PolicyKind::BlockFifo,
            PolicyKind::IblpBalanced,
            PolicyKind::Iblp { item_lines: 42 },
            PolicyKind::ThresholdLoad { a: 3 },
            PolicyKind::TwoQ,
            PolicyKind::Slru,
            PolicyKind::LruK { k: 2 },
            PolicyKind::WTinyLfu,
            PolicyKind::AdaptiveIblp,
            PolicyKind::PartialGcm { seed: 0, coload: 3 },
        ] {
            assert_eq!(PolicyKind::parse(&kind.label()).unwrap(), kind);
        }
    }

    #[test]
    fn extended_roster_builds_everywhere() {
        let map = BlockMap::strided(8);
        for kind in PolicyKind::extended_roster(3) {
            let mut p = kind.build(64, &map);
            assert!(p.access(ItemId(0)).is_miss(), "{}", p.name());
            assert!(p.access(ItemId(0)).is_hit(), "{}", p.name());
        }
    }

    #[test]
    fn parse_seeded_policies() {
        assert_eq!(
            PolicyKind::parse("gcm:seed=9").unwrap(),
            PolicyKind::Gcm { seed: 9 }
        );
        assert_eq!(
            PolicyKind::parse("item-random").unwrap(),
            PolicyKind::ItemRandom { seed: 0 }
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(PolicyKind::parse("belady").is_err());
        assert!(PolicyKind::parse("loadk:b=1").is_err());
        assert!(PolicyKind::parse("loadk:a=x").is_err());
    }

    #[test]
    fn build_send_policies_cross_threads() {
        // Every kind must construct a Send trait object that can be moved
        // to another thread and driven there — the per-shard construction
        // pattern of the concurrent runtime.
        let map = BlockMap::strided(8);
        let handles: Vec<_> = PolicyKind::extended_roster(5)
            .into_iter()
            .map(|kind| {
                let mut p = kind.build_send(64, &map);
                std::thread::spawn(move || {
                    assert!(p.access(ItemId(0)).is_miss(), "{}", p.name());
                    assert!(p.access(ItemId(0)).is_hit(), "{}", p.name());
                    p.capacity()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 64);
        }
    }

    #[test]
    fn iblp_item_lines_clamped_to_leave_block_room() {
        let map = BlockMap::strided(8);
        // item_lines larger than capacity − B must be clamped, not panic.
        let p = PolicyKind::Iblp { item_lines: 100 }.build(32, &map);
        assert_eq!(p.capacity(), 32);
    }
}
