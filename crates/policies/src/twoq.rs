//! The 2Q item cache (Johnson & Shasha, VLDB'94).
//!
//! 2Q filters one-shot accesses away from the main LRU: new items enter a
//! small FIFO (`A1in`); only items re-referenced *after leaving* `A1in`
//! (tracked by the ghost queue `A1out`, which stores ids but no data) are
//! promoted into the main LRU (`Am`). Included here as a scan-resistant
//! item-cache baseline: like all item caches it is subject to the
//! Theorem 2 lower bound, which the integration tests exercise.

use crate::lru_list::LruList;
use crate::slab::{KeySet, Universe};
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, ItemId};
use std::collections::VecDeque;

/// The 2Q replacement policy (item-granular).
#[derive(Clone, Debug)]
pub struct TwoQ {
    capacity: usize,
    /// Capacity of the A1in FIFO (resident).
    kin: usize,
    /// Capacity of the A1out ghost queue (ids only, non-resident).
    kout: usize,
    a1in: VecDeque<ItemId>,
    a1in_set: KeySet,
    a1out: VecDeque<ItemId>,
    a1out_set: KeySet,
    am: LruList,
}

impl TwoQ {
    /// A 2Q cache of `capacity` items: `|A1in| = capacity/4` (at least 1)
    /// and a ghost queue of `capacity` id-only entries (ghost entries cost
    /// metadata, not lines; a full-size ghost — as in ARC — keeps the
    /// reuse signal alive under heavy one-shot pollution).
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// A 2Q cache whose queue-membership sets are backed by `universe`.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let kin = (capacity / 4).max(1).min(capacity);
        TwoQ {
            capacity,
            kin,
            kout: capacity,
            a1in: VecDeque::new(),
            a1in_set: universe.item_set(),
            a1out: VecDeque::new(),
            a1out_set: universe.item_set(),
            am: LruList::with_index(capacity, universe.item_index()),
        }
    }

    /// Demote the A1in FIFO head to the ghost queue.
    fn spill_a1in(&mut self) -> ItemId {
        let victim = self.a1in.pop_front().expect("spill on nonempty A1in");
        self.a1in_set.remove(victim.0);
        self.a1out.push_back(victim);
        self.a1out_set.insert(victim.0);
        if self.a1out.len() > self.kout {
            let gone = self.a1out.pop_front().expect("ghost nonempty");
            self.a1out_set.remove(gone.0);
        }
        victim
    }

    /// Capacity of the Am main LRU.
    fn am_cap(&self) -> usize {
        self.capacity - self.kin
    }
}

impl GcPolicy for TwoQ {
    fn name(&self) -> String {
        format!(
            "2Q(k={},kin={},kout={})",
            self.capacity, self.kin, self.kout
        )
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.a1in_set.contains(item.0) || self.am.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if self.am.contains(item.0) {
            self.am.touch(item.0);
            return AccessKind::Hit;
        }
        if self.a1in_set.contains(item.0) {
            // 2Q leaves A1in hits in place (no reordering): correlated
            // references within a burst shouldn't look like reuse.
            return AccessKind::Hit;
        }
        // The queues have hard bounds (as in the original paper): A1in
        // holds at most kin items and Am at most capacity − kin, so total
        // residency never exceeds capacity.
        out.clear();
        out.loaded.push(item);
        let ghost_hit = self.a1out_set.remove(item.0);
        if ghost_hit {
            self.a1out.retain(|&g| g != item);
        }
        if ghost_hit && self.am_cap() > 0 {
            // Ghost hit: this item has real reuse — promote to Am.
            if self.am.len() == self.am_cap() {
                if let Some(victim) = self.am.evict_lru() {
                    out.evicted.push(ItemId(victim));
                }
            }
            self.am.touch(item.0);
        } else {
            if self.a1in.len() == self.kin {
                // Spilling to the ghost removes the item from residency.
                let victim = self.spill_a1in();
                out.evicted.push(victim);
            }
            self.a1in.push_back(item);
            self.a1in_set.insert(item.0);
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.a1in.clear();
        self.a1in_set.clear();
        self.a1out.clear();
        self.a1out_set.clear();
        self.am.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_scans_do_not_pollute_am() {
        let mut c = TwoQ::new(8); // kin = 2
                                  // Establish a hot item with reuse: 1 enters A1in, spills to ghost,
                                  // returns → Am.
        c.access(ItemId(1));
        c.access(ItemId(2));
        c.access(ItemId(3)); // spills 1 to ghost
        assert!(!c.contains(ItemId(1)));
        c.access(ItemId(1)); // ghost hit → Am
        assert!(c.contains(ItemId(1)));
        // A long scan of one-shot items must not evict 1 from Am.
        for id in 100..200u64 {
            c.access(ItemId(id));
        }
        assert!(c.contains(ItemId(1)), "scan polluted Am");
    }

    #[test]
    fn a1in_hits_do_not_promote() {
        let mut c = TwoQ::new(8);
        c.access(ItemId(5));
        assert!(c.access(ItemId(5)).is_hit(), "A1in hit");
        // Still in A1in: two more insertions spill it.
        c.access(ItemId(6));
        c.access(ItemId(7));
        assert!(
            !c.contains(ItemId(5)),
            "burst reuse must not pin A1in items"
        );
    }

    #[test]
    fn capacity_respected() {
        let mut c = TwoQ::new(6);
        let mut x = 1u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(ItemId(x % 50));
            assert!(c.len() <= 6);
        }
    }

    #[test]
    fn contains_matches_access() {
        let mut c = TwoQ::new(5);
        let mut x = 77u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let item = ItemId(x % 24);
            let pre = c.contains(item);
            assert_eq!(pre, c.access(item).is_hit());
            assert!(c.contains(item));
        }
    }

    #[test]
    fn evictions_really_leave() {
        use gc_types::AccessResult;
        let mut c = TwoQ::new(4);
        for id in 0..100u64 {
            if let AccessResult::Miss { evicted, .. } = c.access(ItemId(id)) {
                for e in evicted {
                    assert!(!c.contains(e));
                }
            }
        }
    }

    #[test]
    fn capacity_one_works() {
        let mut c = TwoQ::new(1);
        assert!(c.access(ItemId(1)).is_miss());
        assert!(c.access(ItemId(1)).is_hit());
        let r = c.access(ItemId(2));
        assert_eq!(r.evicted(), &[ItemId(1)]);
        assert_eq!(c.len(), 1);
    }
}
