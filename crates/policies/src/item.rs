//! Item Caches: policies that load only the requested item.
//!
//! These are the "traditional caches" of the paper's §2 baseline — they
//! exploit temporal locality only. Theorem 2 shows any such policy pays a
//! competitive penalty of roughly `B×` in the GC model; they remain the
//! right choice when the online cache is barely larger than the comparison
//! point (§4.4).

use crate::lru_list::LruList;
use crate::slab::{KeyIndex, KeySet, KeyTable, Universe};
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, ItemId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

fn check_capacity(capacity: usize) -> usize {
    assert!(capacity > 0, "cache capacity must be positive");
    capacity
}

/// Least-Recently-Used item cache — the canonical online policy and the
/// building block of IBLP's item layer.
#[derive(Clone, Debug)]
pub struct ItemLru {
    capacity: usize,
    list: LruList,
}

impl ItemLru {
    /// An LRU cache holding up to `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// An LRU cache whose key index is backed by `universe` (dense array
    /// loads for compiled traces, hash probes otherwise).
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        ItemLru {
            capacity: check_capacity(capacity),
            list: LruList::with_index(capacity, universe.item_index()),
        }
    }
}

impl GcPolicy for ItemLru {
    fn name(&self) -> String {
        format!("ItemLRU(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.list.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if !self.list.touch(item.0) {
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.list.len() > self.capacity {
            let victim = self.list.evict_lru().expect("nonempty after insert");
            out.evicted.push(ItemId(victim));
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.list.clear();
    }
}

/// First-In-First-Out item cache: evicts in insertion order, ignoring
/// recency (hits do not move an item).
#[derive(Clone, Debug)]
pub struct ItemFifo {
    capacity: usize,
    queue: VecDeque<ItemId>,
    present: KeySet,
}

impl ItemFifo {
    /// A FIFO cache holding up to `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// A FIFO cache whose presence set is backed by `universe`.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        ItemFifo {
            capacity: check_capacity(capacity),
            queue: VecDeque::with_capacity(capacity + 1),
            present: universe.item_set(),
        }
    }
}

impl GcPolicy for ItemFifo {
    fn name(&self) -> String {
        format!("ItemFIFO(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.present.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.present.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if self.present.contains(item.0) {
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.present.len() == self.capacity {
            let victim = self.queue.pop_front().expect("queue tracks presence");
            self.present.remove(victim.0);
            out.evicted.push(victim);
        }
        self.queue.push_back(item);
        self.present.insert(item.0);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.present.clear();
    }
}

/// CLOCK (second-chance) item cache: a FIFO ring with one reference bit per
/// entry — the classic low-overhead LRU approximation.
#[derive(Clone, Debug)]
pub struct ItemClock {
    capacity: usize,
    ring: Vec<(ItemId, bool)>,
    hand: usize,
    index: KeyIndex,
}

impl ItemClock {
    /// A CLOCK cache holding up to `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// A CLOCK cache whose position index is backed by `universe`.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        ItemClock {
            capacity: check_capacity(capacity),
            ring: Vec::with_capacity(capacity),
            hand: 0,
            index: universe.item_index(),
        }
    }
}

impl GcPolicy for ItemClock {
    fn name(&self) -> String {
        format!("ItemCLOCK(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.index.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if let Some(pos) = self.index.get(item.0) {
            self.ring[pos as usize].1 = true;
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        // New entries start with the reference bit clear; only a hit sets
        // it. That is what makes the hand's "second chance" meaningful.
        if self.ring.len() < self.capacity {
            self.index.insert(item.0, self.ring.len() as u32);
            self.ring.push((item, false));
        } else {
            // Advance the hand until an unreferenced entry is found.
            loop {
                let (victim, referenced) = self.ring[self.hand];
                if referenced {
                    self.ring[self.hand].1 = false;
                    self.hand = (self.hand + 1) % self.capacity;
                } else {
                    self.index.remove(victim.0);
                    out.evicted.push(victim);
                    self.ring[self.hand] = (item, false);
                    self.index.insert(item.0, self.hand as u32);
                    self.hand = (self.hand + 1) % self.capacity;
                    break;
                }
            }
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.ring.clear();
        self.index.clear();
        self.hand = 0;
    }
}

/// Least-Frequently-Used item cache with LRU tie-breaking.
///
/// Frequencies persist only while the item is resident (no ghost history).
#[derive(Clone, Debug)]
pub struct ItemLfu {
    capacity: usize,
    /// (frequency, last-access sequence, item) — the `BTreeSet` minimum is
    /// the eviction victim.
    order: BTreeSet<(u64, u64, ItemId)>,
    entries: KeyTable<(u64, u64)>,
    clock: u64,
}

impl ItemLfu {
    /// An LFU cache holding up to `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::with_universe(capacity, &Universe::sparse())
    }

    /// An LFU cache whose frequency table is backed by `universe`.
    pub fn with_universe(capacity: usize, universe: &Universe) -> Self {
        ItemLfu {
            capacity: check_capacity(capacity),
            order: BTreeSet::new(),
            entries: universe.item_table(),
            clock: 0,
        }
    }
}

impl GcPolicy for ItemLfu {
    fn name(&self) -> String {
        format!("ItemLFU(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.entries.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        self.clock += 1;
        if let Some(&(freq, seq)) = self.entries.get(item.0) {
            self.order.remove(&(freq, seq, item));
            self.order.insert((freq + 1, self.clock, item));
            self.entries.insert(item.0, (freq + 1, self.clock));
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.entries.len() == self.capacity {
            let &(freq, seq, victim) = self.order.iter().next().expect("nonempty at capacity");
            self.order.remove(&(freq, seq, victim));
            self.entries.remove(victim.0);
            out.evicted.push(victim);
        }
        self.order.insert((1, self.clock, item));
        self.entries.insert(item.0, (1, self.clock));
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.order.clear();
        self.entries.clear();
        self.clock = 0;
    }
}

/// Random-replacement item cache (seeded, hence reproducible).
#[derive(Clone, Debug)]
pub struct ItemRandom {
    capacity: usize,
    items: Vec<ItemId>,
    index: KeyIndex,
    rng: SmallRng,
}

impl ItemRandom {
    /// A random-replacement cache holding up to `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_universe(capacity, seed, &Universe::sparse())
    }

    /// A random-replacement cache whose position index is backed by
    /// `universe`.
    pub fn with_universe(capacity: usize, seed: u64, universe: &Universe) -> Self {
        ItemRandom {
            capacity: check_capacity(capacity),
            items: Vec::with_capacity(capacity),
            index: universe.item_index(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl GcPolicy for ItemRandom {
    fn name(&self) -> String {
        format!("ItemRandom(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.index.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if self.index.contains(item.0) {
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.items.len() == self.capacity {
            let pos = self.rng.gen_range(0..self.items.len());
            let victim = self.items.swap_remove(pos);
            self.index.remove(victim.0);
            if pos < self.items.len() {
                self.index.insert(self.items[pos].0, pos as u32);
            }
            out.evicted.push(victim);
        }
        self.index.insert(item.0, self.items.len() as u32);
        self.items.push(item);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.items.clear();
        self.index.clear();
    }
}

/// The classic randomized marking algorithm (Fiat et al.), at item
/// granularity.
///
/// Requested items are marked; evictions pick a uniformly random *unmarked*
/// item, and when everything is marked a new phase begins (all marks
/// cleared). §6.1 notes this policy ignores granularity change and pays a
/// factor `B` on block-streaming traces — [`Gcm`](crate::Gcm) is the
/// granularity-aware fix.
#[derive(Clone, Debug)]
pub struct ItemMarking {
    capacity: usize,
    marked: KeySet,
    /// Marking order of the current phase; the phase-change drain walks
    /// this so the unmark order (an input to the random victim choice) is
    /// identical for the sparse and dense backings.
    marked_order: Vec<ItemId>,
    /// Unmarked resident items, in a vector for O(1) random choice.
    unmarked: Vec<ItemId>,
    unmarked_pos: KeyIndex,
    rng: SmallRng,
}

impl ItemMarking {
    /// A marking cache holding up to `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self::with_universe(capacity, seed, &Universe::sparse())
    }

    /// A marking cache whose mark set and position index are backed by
    /// `universe`.
    pub fn with_universe(capacity: usize, seed: u64, universe: &Universe) -> Self {
        ItemMarking {
            capacity: check_capacity(capacity),
            marked: universe.item_set(),
            marked_order: Vec::new(),
            unmarked: Vec::new(),
            unmarked_pos: universe.item_index(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn mark(&mut self, item: ItemId) {
        if self.marked.insert(item.0) {
            self.marked_order.push(item);
        }
    }

    fn remove_unmarked(&mut self, item: ItemId) -> bool {
        if let Some(pos) = self.unmarked_pos.remove(item.0) {
            let pos = pos as usize;
            self.unmarked.swap_remove(pos);
            if pos < self.unmarked.len() {
                self.unmarked_pos.insert(self.unmarked[pos].0, pos as u32);
            }
            true
        } else {
            false
        }
    }

    /// Evict one item: random unmarked, starting a new phase if none exist.
    fn evict_one(&mut self) -> ItemId {
        if self.unmarked.is_empty() {
            // New phase: clear all marks, in marking order.
            for &item in &self.marked_order {
                self.marked.remove(item.0);
                self.unmarked_pos.insert(item.0, self.unmarked.len() as u32);
                self.unmarked.push(item);
            }
            self.marked_order.clear();
        }
        let pos = self.rng.gen_range(0..self.unmarked.len());
        let victim = self.unmarked.swap_remove(pos);
        self.unmarked_pos.remove(victim.0);
        if pos < self.unmarked.len() {
            self.unmarked_pos.insert(self.unmarked[pos].0, pos as u32);
        }
        victim
    }
}

impl GcPolicy for ItemMarking {
    fn name(&self) -> String {
        format!("ItemMarking(k={})", self.capacity)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.marked.len() + self.unmarked.len()
    }

    fn contains(&self, item: ItemId) -> bool {
        self.marked.contains(item.0) || self.unmarked_pos.contains(item.0)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        if self.marked.contains(item.0) {
            return AccessKind::Hit;
        }
        if self.remove_unmarked(item) {
            self.mark(item);
            return AccessKind::Hit;
        }
        out.clear();
        out.loaded.push(item);
        if self.len() == self.capacity {
            let victim = self.evict_one();
            out.evicted.push(victim);
        }
        self.mark(item);
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.marked.clear();
        self.marked_order.clear();
        self.unmarked.clear();
        self.unmarked_pos.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_types::AccessResult;

    fn drive(policy: &mut impl GcPolicy, ids: &[u64]) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for &id in ids {
            match policy.access(ItemId(id)) {
                AccessResult::Hit => hits += 1,
                AccessResult::Miss { .. } => misses += 1,
            }
        }
        (hits, misses)
    }

    /// Invariant check shared by all item policies.
    fn invariants(policy: &mut impl GcPolicy, ids: &[u64]) {
        for &id in ids {
            let item = ItemId(id);
            let was_present = policy.contains(item);
            let result = policy.access(item);
            assert_eq!(result.is_hit(), was_present, "contains/access disagree");
            if let AccessResult::Miss { loaded, evicted } = &result {
                assert_eq!(loaded, &vec![item], "item caches load only the request");
                for e in evicted {
                    assert!(!policy.contains(*e), "evicted item still present");
                }
            }
            assert!(
                policy.contains(item),
                "requested item must be resident after access"
            );
            assert!(policy.len() <= policy.capacity(), "capacity exceeded");
        }
    }

    fn pseudo_ids(len: usize, universe: u64) -> Vec<u64> {
        let mut x = 0x9E37_79B9u64;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % universe
            })
            .collect()
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = ItemLru::new(2);
        c.access(ItemId(1));
        c.access(ItemId(2));
        c.access(ItemId(1)); // 1 is now MRU
        let r = c.access(ItemId(3));
        assert_eq!(r.evicted(), &[ItemId(2)]);
        assert!(c.contains(ItemId(1)));
        assert!(!c.contains(ItemId(2)));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = ItemFifo::new(2);
        c.access(ItemId(1));
        c.access(ItemId(2));
        c.access(ItemId(1)); // hit: does NOT refresh
        let r = c.access(ItemId(3));
        assert_eq!(
            r.evicted(),
            &[ItemId(1)],
            "FIFO evicts first-in despite the hit"
        );
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut c = ItemClock::new(2);
        c.access(ItemId(1));
        c.access(ItemId(2));
        c.access(ItemId(1)); // sets 1's ref bit
        let r = c.access(ItemId(3));
        // Hand passes 1 (referenced: cleared), evicts 2.
        assert_eq!(r.evicted(), &[ItemId(2)]);
        assert!(c.contains(ItemId(1)));
    }

    #[test]
    fn lfu_protects_frequent_items() {
        let mut c = ItemLfu::new(2);
        c.access(ItemId(1));
        c.access(ItemId(1));
        c.access(ItemId(1));
        c.access(ItemId(2));
        let r = c.access(ItemId(3));
        assert_eq!(
            r.evicted(),
            &[ItemId(2)],
            "the singleton loses to the hot item"
        );
    }

    #[test]
    fn lfu_ties_break_lru() {
        let mut c = ItemLfu::new(2);
        c.access(ItemId(1));
        c.access(ItemId(2));
        // Both have frequency 1; 1 is older.
        let r = c.access(ItemId(3));
        assert_eq!(r.evicted(), &[ItemId(1)]);
    }

    #[test]
    fn random_is_reproducible() {
        let ids = pseudo_ids(2000, 64);
        let mut a = ItemRandom::new(16, 42);
        let mut b = ItemRandom::new(16, 42);
        assert_eq!(drive(&mut a, &ids), drive(&mut b, &ids));
    }

    #[test]
    fn marking_hits_mark_items() {
        let mut c = ItemMarking::new(3, 1);
        c.access(ItemId(1));
        c.access(ItemId(2));
        c.access(ItemId(3));
        // All marked; next miss starts a new phase and evicts one of them.
        let r = c.access(ItemId(4));
        assert_eq!(r.evicted().len(), 1);
        assert!(c.contains(ItemId(4)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn marking_never_evicts_marked_while_unmarked_exist() {
        let mut c = ItemMarking::new(3, 7);
        c.access(ItemId(1)); // marked
        c.access(ItemId(2)); // marked
        c.access(ItemId(3)); // marked
                             // Phase reset on next miss, then re-mark 1.
        c.access(ItemId(4));
        c.access(ItemId(1));
        // 1 and 4 are marked; eviction must take 2 or 3.
        let r = c.access(ItemId(5));
        let v = r.evicted()[0];
        assert!(v == ItemId(2) || v == ItemId(3), "evicted {v}");
    }

    #[test]
    fn all_policies_satisfy_invariants() {
        let ids = pseudo_ids(5000, 100);
        invariants(&mut ItemLru::new(32), &ids);
        invariants(&mut ItemFifo::new(32), &ids);
        invariants(&mut ItemClock::new(32), &ids);
        invariants(&mut ItemLfu::new(32), &ids);
        invariants(&mut ItemRandom::new(32, 3), &ids);
        invariants(&mut ItemMarking::new(32, 3), &ids);
    }

    #[test]
    fn reset_restores_cold_cache() {
        let ids = pseudo_ids(100, 20);
        let mut c = ItemLru::new(8);
        drive(&mut c, &ids);
        c.reset();
        assert_eq!(c.len(), 0);
        let r = c.access(ItemId(ids[0]));
        assert!(r.is_miss());
    }

    #[test]
    fn capacity_one_caches_work() {
        for policy in [
            Box::new(ItemLru::new(1)) as Box<dyn GcPolicy>,
            Box::new(ItemFifo::new(1)),
            Box::new(ItemClock::new(1)),
            Box::new(ItemLfu::new(1)),
            Box::new(ItemRandom::new(1, 0)),
            Box::new(ItemMarking::new(1, 0)),
        ] {
            let mut p = policy;
            assert!(p.access(ItemId(1)).is_miss());
            assert!(p.access(ItemId(1)).is_hit());
            let r = p.access(ItemId(2));
            assert_eq!(r.evicted(), &[ItemId(1)], "{}", p.name());
            assert_eq!(p.len(), 1);
        }
    }

    #[test]
    fn lru_beats_fifo_on_hot_item_plus_scan() {
        // Hot item 0 interleaved with a cold scan. LRU pins the hot item
        // forever; FIFO cycles it out once per capacity-many cold items.
        let mut ids = Vec::with_capacity(20_000);
        for i in 0..10_000u64 {
            ids.push(0);
            ids.push(100 + i);
        }
        let (lru_hits, _) = drive(&mut ItemLru::new(64), &ids);
        let (fifo_hits, _) = drive(&mut ItemFifo::new(64), &ids);
        assert_eq!(lru_hits, 9_999, "LRU never evicts the hot item");
        assert!(fifo_hits < lru_hits, "lru={lru_hits} fifo={fifo_hits}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ItemLru::new(0);
    }
}
