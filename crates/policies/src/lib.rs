//! # gc-policies
//!
//! Online replacement policies for the Granularity-Change Caching Problem.
//!
//! The model (Definition 1 of the paper): items have unit size, the item
//! universe is partitioned into blocks of at most `B` items, and on a miss
//! the cache may load **any subset of the missing item's block for one unit
//! of cost** (the subset must contain the requested item). Items are cached
//! and evicted individually — that freedom is what separates GC caching
//! from variable-size caching.
//!
//! ## Policy families
//!
//! * **Item caches** ([`item`]) load only the requested item: [`ItemLru`],
//!   [`ItemFifo`], [`ItemClock`], [`ItemLfu`], [`ItemRandom`],
//!   [`ItemMarking`]. They capture temporal locality and ignore spatial
//!   locality (Theorem 2 shows they forfeit a factor `≈ B`).
//! * **Block caches** ([`block`]) load *and evict* whole blocks:
//!   [`BlockLru`], [`BlockFifo`]. They capture spatial locality but one
//!   hot item pins `B` lines (Theorem 3 shows the effective size drops to
//!   `k/B`).
//! * **IBLP** ([`iblp`]) — *Item-Block Layered Partitioning*, the paper's
//!   policy (§5): an item-granular LRU front layer of size `i` backed by a
//!   block-granular LRU layer of size `b`. Loads whole blocks, evicts
//!   items; competitive ratio within ~3× of the general lower bound.
//! * **GCM** ([`gcm`]) — *Granularity-Change Marking* (§6): a randomized
//!   marking policy that co-loads a block's items unmarked, so spatial
//!   guesses never displace items with proven temporal locality.
//! * **ThresholdLoad** ([`loadk`]) — the `a`-parameter family of Theorem 4:
//!   loads the full block only after `a` distinct items of the block have
//!   been requested. `a = 1` and `a = B` are the extremes §4.4 recommends.
//! * **Extended item-cache roster** — [`TwoQ`], [`Slru`], [`LruK`], and
//!   [`WTinyLfu`] (with its [`CountMinSketch`] substrate): production
//!   scan-resistant policies, all still subject to the Theorem 2 item-cache
//!   lower bound.
//! * **Extensions** ([`iblp_variants`], [`adaptive_iblp`]) — ablations of
//!   the §5.1 design choices, and an ARC-style ghost-list adaptation of the
//!   IBLP split (§5.3 shows no static split is right for every comparison
//!   size).
//!
//! All policies implement [`GcPolicy`] and report per-access
//! [`AccessResult`]s precise enough for the simulator to attribute hits to
//! temporal vs spatial locality.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive_iblp;
pub mod block;
pub mod factory;
pub mod gcm;
pub mod iblp;
pub mod iblp_variants;
pub mod item;
pub mod loadk;
pub mod lru_list;
pub mod lruk;
pub mod sketch;
pub mod slab;
pub mod slru;
pub mod tinylfu;
pub mod twoq;

pub use adaptive_iblp::AdaptiveIblp;
pub use block::{BlockFifo, BlockLru};
pub use factory::PolicyKind;
pub use gcm::Gcm;
pub use iblp::Iblp;
pub use iblp_variants::{IblpConfig, IblpVariant};
pub use item::{ItemClock, ItemFifo, ItemLfu, ItemLru, ItemMarking, ItemRandom};
pub use loadk::ThresholdLoad;
pub use lruk::LruK;
pub use sketch::CountMinSketch;
pub use slab::{KeyIndex, KeySet, KeyTable, Universe};
pub use slru::Slru;
pub use tinylfu::WTinyLfu;
pub use twoq::TwoQ;

use gc_types::{AccessKind, AccessResult, AccessScratch, ItemId};

/// An online cache policy for the GC Caching Problem.
///
/// Implementations own their [`BlockMap`](gc_types::BlockMap) (it is
/// `Arc`-backed and cheap to clone) and their full replacement state. The
/// simulator drives them one request at a time through [`access_into`],
/// reusing a single [`AccessScratch`] so the steady-state hot path never
/// touches the heap. The allocating [`access`] wrapper remains for tests
/// and one-off callers.
///
/// [`access`]: GcPolicy::access
/// [`access_into`]: GcPolicy::access_into
pub trait GcPolicy {
    /// Human-readable policy name, including salient parameters.
    fn name(&self) -> String;

    /// Total capacity `k` in items.
    fn capacity(&self) -> usize;

    /// Items currently resident.
    fn len(&self) -> usize;

    /// Whether the cache currently holds `item` (i.e. a request to it now
    /// would hit).
    fn contains(&self, item: ItemId) -> bool;

    /// Serve one request, mutating the cache and reporting what happened
    /// through the caller-owned scratch buffers.
    ///
    /// Contract: on a **miss** the policy clears `out` and fills
    /// `out.loaded` with exactly the items loaded (always including
    /// `item`) and `out.evicted` with the items evicted from the cache as
    /// a whole. On a **hit** the scratch is left untouched (its contents
    /// are stale and must not be read). Implementations must not allocate
    /// per call beyond the scratch's own one-time growth.
    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind;

    /// Serve one request, reporting the outcome as an owned
    /// [`AccessResult`] (allocating on misses).
    ///
    /// Convenience wrapper over [`access_into`](GcPolicy::access_into) for
    /// tests and non-hot-path callers; simulation loops should hold an
    /// [`AccessScratch`] and call `access_into` directly.
    fn access(&mut self, item: ItemId) -> AccessResult {
        let mut out = AccessScratch::new();
        let kind = self.access_into(item, &mut out);
        out.take_result(kind)
    }

    /// Clear all cached state, returning to the post-construction state.
    fn reset(&mut self);

    /// Whether the cache holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Boxed-policy convenience: a box around any policy (sized or trait
/// object, `Send` or not) is itself a policy, so `Box<dyn GcPolicy>` and
/// the runtime's per-shard `Box<dyn GcPolicy + Send>` both drive the
/// simulator directly.
impl<P: GcPolicy + ?Sized> GcPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn contains(&self, item: ItemId) -> bool {
        (**self).contains(item)
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        (**self).access_into(item, out)
    }

    fn access(&mut self, item: ItemId) -> AccessResult {
        (**self).access(item)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}
