//! Adaptive IBLP — online tuning of the item/block split.
//!
//! §5.3 shows the optimal IBLP partition depends on the offline comparison
//! size `h`, which a deployed cache cannot know. This extension (in the
//! spirit of ARC's adaptation) learns the split from the workload instead:
//! two *ghost lists* record recently evicted item-layer items and recently
//! evicted block-layer blocks. A miss that would have been a hit with a
//! larger item layer (ghost item hit) votes to grow `i`; a miss that a
//! larger block layer would have caught votes to grow `b`. At the end of
//! each epoch the boundary moves one block-width toward the winner.
//!
//! Evaluated in the `adaptive_split` example and the ablation bench: on
//! phase-changing workloads the adaptive split tracks the better static
//! split without knowing it in advance.

use crate::lru_list::LruList;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockId, BlockMap, ItemId};

/// IBLP with epoch-based ghost-list adaptation of the layer split.
#[derive(Clone, Debug)]
pub struct AdaptiveIblp {
    capacity: usize,
    item_size: usize,
    /// Where `reset` returns the boundary — the construction-time split,
    /// so a seeded policy re-seeds rather than snapping back to even.
    initial_item_size: usize,
    map: BlockMap,
    item_layer: LruList,
    block_layer: LruList,
    /// Block-layer lines, maintained incrementally (see [`crate::Iblp`]).
    block_lines: usize,
    /// Recently evicted item-layer items (ids only).
    item_ghost: LruList,
    /// Recently evicted block-layer blocks (ids only).
    block_ghost: LruList,
    ghost_cap: usize,
    epoch_len: u64,
    accesses_this_epoch: u64,
    grow_item_votes: u64,
    grow_block_votes: u64,
    /// Evictions caused by an epoch boundary that landed on a hit; they are
    /// reported with the next miss so `AccessResult::Hit` stays payload-free.
    pending: Vec<ItemId>,
}

impl AdaptiveIblp {
    /// An adaptive IBLP of `capacity` lines, starting from an even split.
    pub fn new(capacity: usize, map: BlockMap) -> Self {
        let item_size = capacity / 2;
        Self::with_split(capacity, item_size, map)
    }

    /// An adaptive IBLP seeded at a specific split instead of the even
    /// default — e.g. the best split of an offline MRC grid
    /// ([`mrc_bundle`]), so adaptation starts from the profiled optimum
    /// and only has to track drift, not find the split from scratch.
    /// `reset` returns to this seed.
    ///
    /// [`mrc_bundle`]: ../gc_sim/mrc/fn.mrc_bundle.html
    ///
    /// # Panics
    ///
    /// Panics unless each layer gets at least one block of room:
    /// `B ≤ item_lines ≤ capacity − B`.
    pub fn with_split(capacity: usize, item_lines: usize, map: BlockMap) -> Self {
        let b = map.max_block_size();
        assert!(
            capacity >= 2 * b,
            "need at least one block of room per layer (capacity {capacity}, B {b})"
        );
        assert!(
            (b..=capacity - b).contains(&item_lines),
            "seed split i={item_lines} leaves a layer below one block (capacity {capacity}, B {b})"
        );
        let universe = Universe::of(&map);
        AdaptiveIblp {
            capacity,
            item_size: item_lines,
            initial_item_size: item_lines,
            ghost_cap: capacity,
            epoch_len: (4 * capacity as u64).max(64),
            item_layer: LruList::with_index(capacity, universe.item_index()),
            block_layer: LruList::with_index(capacity / b, universe.block_index()),
            block_lines: 0,
            item_ghost: LruList::with_index(capacity, universe.item_index()),
            block_ghost: LruList::with_index(capacity, universe.block_index()),
            map,
            accesses_this_epoch: 0,
            grow_item_votes: 0,
            grow_block_votes: 0,
            pending: Vec::new(),
        }
    }

    /// Current item-layer size (lines).
    pub fn item_layer_size(&self) -> usize {
        self.item_size
    }

    /// Current block-layer size (lines).
    pub fn block_layer_size(&self) -> usize {
        self.capacity - self.item_size
    }

    fn block_slots(&self) -> usize {
        self.block_layer_size() / self.map.max_block_size()
    }

    /// Shrink layers into their budgets after a boundary move, recording
    /// overall evictions.
    fn enforce_budgets(&mut self, evicted: &mut Vec<ItemId>) {
        while self.item_layer.len() > self.item_size {
            let victim = ItemId(self.item_layer.evict_lru().expect("nonempty"));
            self.item_ghost.touch(victim.0);
            if !self.block_layer.contains(self.map.block_of(victim).0) {
                evicted.push(victim);
            }
        }
        while self.block_layer.len() > self.block_slots() {
            let victim = BlockId(self.block_layer.evict_lru().expect("nonempty"));
            self.block_lines -= self.map.block_len(victim);
            self.block_ghost.touch(victim.0);
            for z in self.map.items_of(victim) {
                if !self.item_layer.contains(z.0) {
                    evicted.push(z);
                }
            }
        }
        while self.item_ghost.len() > self.ghost_cap {
            self.item_ghost.evict_lru();
        }
        while self.block_ghost.len() > self.ghost_cap {
            self.block_ghost.evict_lru();
        }
    }

    fn maybe_adapt(&mut self, evicted: &mut Vec<ItemId>) {
        self.accesses_this_epoch += 1;
        if self.accesses_this_epoch < self.epoch_len {
            return;
        }
        let b = self.map.max_block_size();
        if self.grow_item_votes > self.grow_block_votes && self.item_size + b <= self.capacity - b {
            self.item_size += b;
        } else if self.grow_block_votes > self.grow_item_votes && self.item_size >= 2 * b {
            self.item_size -= b;
        }
        self.accesses_this_epoch = 0;
        self.grow_item_votes = 0;
        self.grow_block_votes = 0;
        self.enforce_budgets(evicted);
    }
}

impl GcPolicy for AdaptiveIblp {
    fn name(&self) -> String {
        format!(
            "AdaptiveIBLP(k={},i={},B={})",
            self.capacity,
            self.item_size,
            self.map.max_block_size()
        )
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.item_layer.len() + self.block_lines
    }

    fn contains(&self, item: ItemId) -> bool {
        self.item_layer.contains(item.0)
            || self
                .map
                .try_block_of(item)
                .is_some_and(|b| self.block_layer.contains(b.0))
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        let block = self.map.block_of(item);
        // Epoch-boundary evictions accumulate in the policy-owned `pending`
        // buffer (taken and restored, so its allocation is reused) and are
        // folded into the next miss's report.
        let mut pending = std::mem::take(&mut self.pending);
        self.maybe_adapt(&mut pending);

        if self.item_layer.contains(item.0) {
            self.item_layer.touch(item.0);
            // Epoch evictions that coincide with a hit are folded into the
            // next miss's report (the access itself is still a hit).
            self.pending = pending;
            return AccessKind::Hit;
        }
        if self.block_layer.contains(block.0) {
            self.block_layer.touch(block.0);
            self.item_layer.touch(item.0);
            self.enforce_item_overflow(&mut pending);
            self.pending = pending;
            return AccessKind::Hit;
        }

        // Overall miss: ghost votes first.
        if self.item_ghost.contains(item.0) {
            self.item_ghost.remove(item.0);
            self.grow_item_votes += 1;
        }
        if self.block_ghost.contains(block.0) {
            self.block_ghost.remove(block.0);
            self.grow_block_votes += 1;
        }

        out.clear();
        for z in self.map.items_of(block) {
            if !self.item_layer.contains(z.0) {
                out.loaded.push(z);
            }
        }
        out.evicted.append(&mut pending);
        self.pending = pending;
        self.block_layer.touch(block.0);
        self.block_lines += self.map.block_len(block);
        if self.block_layer.len() > self.block_slots() {
            let victim = BlockId(self.block_layer.evict_lru().expect("nonempty"));
            self.block_lines -= self.map.block_len(victim);
            self.block_ghost.touch(victim.0);
            for z in self.map.items_of(victim) {
                if !self.item_layer.contains(z.0) {
                    out.evicted.push(z);
                }
            }
        }
        self.item_layer.touch(item.0);
        self.enforce_item_overflow(&mut out.evicted);
        // Epoch-boundary evictions may have been undone by this access
        // reloading the same block; report only what is really gone, once.
        out.evicted.sort_unstable();
        out.evicted.dedup();
        let this: &Self = self;
        out.evicted.retain(|e| !this.contains(*e));
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.item_layer.clear();
        self.block_layer.clear();
        self.block_lines = 0;
        self.item_ghost.clear();
        self.block_ghost.clear();
        self.item_size = self.initial_item_size;
        self.accesses_this_epoch = 0;
        self.grow_item_votes = 0;
        self.grow_block_votes = 0;
        self.pending.clear();
    }
}

impl AdaptiveIblp {
    fn enforce_item_overflow(&mut self, evicted: &mut Vec<ItemId>) {
        while self.item_layer.len() > self.item_size {
            let victim = ItemId(self.item_layer.evict_lru().expect("nonempty"));
            self.item_ghost.touch(victim.0);
            if !self.block_layer.contains(self.map.block_of(victim).0) {
                evicted.push(victim);
            }
        }
        while self.item_ghost.len() > self.ghost_cap {
            self.item_ghost.evict_lru();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_types::Trace;

    fn misses(policy: &mut dyn GcPolicy, trace: &Trace) -> u64 {
        trace.iter().filter(|&i| policy.access(i).is_miss()).count() as u64
    }

    #[test]
    fn adapts_toward_block_layer_on_block_loops() {
        let map = BlockMap::strided(8);
        let mut c = AdaptiveIblp::new(64, map);
        let start = c.item_layer_size();
        // Cyclic whole-block loop over 20 blocks (160 items): item reuse
        // distance (160) exceeds the item layer + ghost reach (≤ 96), so
        // only the block ghost (reuse distance 20 blocks) fires.
        let mut trace = Trace::new();
        for round in 0..250u64 {
            let blk = round % 20;
            for off in 0..8u64 {
                trace.push(ItemId(blk * 8 + off));
            }
        }
        let _ = misses(&mut c, &trace);
        assert!(
            c.item_layer_size() < start,
            "split did not move toward blocks: {} -> {}",
            start,
            c.item_layer_size()
        );
    }

    #[test]
    fn adapts_toward_item_layer_on_sparse_reuse() {
        let map = BlockMap::strided(8);
        let mut c = AdaptiveIblp::new(64, map);
        let start = c.item_layer_size();
        // Loop over 80 sparse items, one per block: the item ghost's reach
        // (item layer + ghost ≈ 96) covers the loop, but the block ghost
        // (64 entries < 80 blocks) never fires.
        let loop_items: Vec<u64> = (0..80u64).map(|i| i * 8).collect();
        let trace = Trace::from_ids(loop_items.iter().cycle().copied().take(40_000));
        let _ = misses(&mut c, &trace);
        assert!(
            c.item_layer_size() > start,
            "split did not move toward items: {} -> {}",
            start,
            c.item_layer_size()
        );
    }

    #[test]
    fn tracks_better_static_split_on_phased_workload() {
        use crate::iblp::Iblp;
        let map = BlockMap::strided(8);
        // Phase 1: sparse hot loop (item-friendly). Phase 2: streams
        // (block-friendly). An even static split is mediocre at both.
        let mut trace = Trace::new();
        let loop_items: Vec<u64> = (0..40u64).map(|i| i * 8).collect();
        for item in loop_items.iter().cycle().take(30_000) {
            trace.push(ItemId(*item));
        }
        for id in 1_000_000..1_030_000u64 {
            trace.push(ItemId(id));
        }
        let mut adaptive = AdaptiveIblp::new(64, map.clone());
        let mut static_even = Iblp::balanced(64, map);
        let m_adaptive = misses(&mut adaptive, &trace);
        let m_static = misses(&mut static_even, &trace);
        assert!(
            m_adaptive <= m_static + m_static / 10,
            "adaptive {m_adaptive} much worse than static {m_static}"
        );
    }

    #[test]
    fn invariants_under_adaptation() {
        let map = BlockMap::strided(4);
        let mut c = AdaptiveIblp::new(32, map);
        let mut x = 21u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = ItemId(x % 96);
            let pre = c.contains(item);
            let r = c.access(item);
            assert_eq!(pre, r.is_hit());
            assert!(c.contains(item));
            assert!(c.len() <= c.capacity());
            for e in r.evicted() {
                assert!(!c.contains(*e), "zombie {e}");
            }
        }
    }

    #[test]
    fn reset_restores_even_split() {
        let map = BlockMap::strided(8);
        let mut c = AdaptiveIblp::new(64, map);
        let _ = misses(&mut c, &Trace::from_ids(0..20_000u64));
        c.reset();
        assert_eq!(c.item_layer_size(), 32);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn with_split_seeds_and_reset_returns_to_seed() {
        let map = BlockMap::strided(8);
        let mut c = AdaptiveIblp::with_split(64, 48, map);
        assert_eq!(c.item_layer_size(), 48);
        assert_eq!(c.block_layer_size(), 16);
        // Drive a block-friendly workload so the split moves, then reset.
        let mut trace = Trace::new();
        for round in 0..250u64 {
            for off in 0..8u64 {
                trace.push(ItemId((round % 20) * 8 + off));
            }
        }
        let _ = misses(&mut c, &trace);
        c.reset();
        assert_eq!(c.item_layer_size(), 48, "reset must restore the seed");
    }

    #[test]
    #[should_panic(expected = "seed split")]
    fn with_split_rejects_layer_below_one_block() {
        let _ = AdaptiveIblp::with_split(64, 60, BlockMap::strided(8));
    }
}
