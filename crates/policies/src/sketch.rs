//! A Count-Min Sketch with periodic aging — the frequency substrate for
//! [`WTinyLfu`](crate::WTinyLfu).
//!
//! Four rows of 4-bit-style saturating counters (stored as `u8`, capped at
//! 15 as in the TinyLFU paper) indexed by independent multiply-shift
//! hashes. After `sample_size` increments every counter is halved (the
//! *reset* operation), which ages out stale popularity.

use gc_types::ItemId;
use std::sync::Arc;

const ROWS: usize = 4;
const COUNTER_MAX: u8 = 15;

/// Frequency sketch with conservative 4-bit counters and halving decay.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width_mask: u64,
    rows: Vec<Vec<u8>>,
    increments: u64,
    sample_size: u64,
    seeds: [u64; ROWS],
    /// Dense-ID traces hash through this inverse table so the bucket
    /// choices — and therefore every admission duel — are bit-identical to
    /// the run over the original sparse ids.
    decode: Option<Arc<Vec<u64>>>,
}

impl CountMinSketch {
    /// A sketch sized for roughly `expected_items` distinct hot items: the
    /// width is the next power of two ≥ `expected_items`, and the aging
    /// period is `10 × expected_items` increments.
    pub fn new(expected_items: usize) -> Self {
        let width = expected_items.next_power_of_two().max(16);
        CountMinSketch {
            width_mask: width as u64 - 1,
            rows: vec![vec![0u8; width]; ROWS],
            increments: 0,
            sample_size: (10 * expected_items as u64).max(160),
            seeds: [
                0x9E37_79B9_7F4A_7C15,
                0xC2B2_AE3D_27D4_EB4F,
                0x1656_67B1_9E37_79F9,
                0x2545_F491_4F6C_DD1D,
            ],
            decode: None,
        }
    }

    /// A sketch over a dense-renamed universe: items are translated back to
    /// their original ids via `decode` before hashing.
    pub fn with_decode(expected_items: usize, decode: Arc<Vec<u64>>) -> Self {
        let mut s = Self::new(expected_items);
        s.decode = Some(decode);
        s
    }

    #[inline]
    fn raw_key(&self, item: ItemId) -> u64 {
        match &self.decode {
            Some(table) => table[item.0 as usize],
            None => item.0,
        }
    }

    #[inline]
    fn index(&self, key: u64, row: usize) -> usize {
        let h = key.wrapping_add(1).wrapping_mul(self.seeds[row]);
        ((h >> 32) & self.width_mask) as usize
    }

    /// Record one occurrence of `item`.
    pub fn increment(&mut self, item: ItemId) {
        // Conservative update: only bump the minimal counters.
        let key = self.raw_key(item);
        let current = self.estimate_key(key);
        if current < COUNTER_MAX as u64 {
            for row in 0..ROWS {
                let idx = self.index(key, row);
                let c = &mut self.rows[row][idx];
                if u64::from(*c) == current {
                    *c += 1;
                }
            }
        }
        self.increments += 1;
        if self.increments >= self.sample_size {
            self.age();
        }
    }

    /// Estimated frequency of `item` (min over rows, ≤ 15).
    pub fn estimate(&self, item: ItemId) -> u64 {
        self.estimate_key(self.raw_key(item))
    }

    #[inline]
    fn estimate_key(&self, key: u64) -> u64 {
        (0..ROWS)
            .map(|row| u64::from(self.rows[row][self.index(key, row)]))
            .min()
            .expect("ROWS > 0")
    }

    /// Halve every counter (the TinyLFU reset).
    fn age(&mut self) {
        for row in &mut self.rows {
            for c in row {
                *c >>= 1;
            }
        }
        self.increments = 0;
    }

    /// Clear all counters.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
        self.increments = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_items_estimate_higher() {
        let mut s = CountMinSketch::new(1024);
        for _ in 0..12 {
            s.increment(ItemId(7));
        }
        s.increment(ItemId(9));
        assert!(s.estimate(ItemId(7)) > s.estimate(ItemId(9)));
        assert!(s.estimate(ItemId(7)) >= 10);
    }

    #[test]
    fn estimates_never_undercount_single_item() {
        // Count-min property: estimate ≥ true count (before aging/cap).
        let mut s = CountMinSketch::new(4096);
        for i in 0..500u64 {
            s.increment(ItemId(i));
        }
        for i in 0..500u64 {
            assert!(s.estimate(ItemId(i)) >= 1, "undercounted {i}");
        }
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut s = CountMinSketch::new(64);
        for _ in 0..100 {
            s.increment(ItemId(3));
        }
        assert!(s.estimate(ItemId(3)) <= 15);
    }

    #[test]
    fn aging_halves_counts() {
        let mut s = CountMinSketch::new(16); // sample_size = 160
        for _ in 0..10 {
            s.increment(ItemId(1));
        }
        let before = s.estimate(ItemId(1));
        // Force an aging pass with unrelated traffic.
        for i in 0..200u64 {
            s.increment(ItemId(100 + i % 7));
        }
        let after = s.estimate(ItemId(1));
        assert!(after < before, "aging did not decay: {before} -> {after}");
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut s = CountMinSketch::new(64);
        s.increment(ItemId(5));
        s.clear();
        assert_eq!(s.estimate(ItemId(5)), 0);
    }
}
