//! Ablation variants of IBLP, exercising the §5.1 design choices.
//!
//! §5.1 motivates two subtleties of IBLP's design:
//!
//! 1. **Layer ordering** — item-layer hits must *not* refresh the block
//!    layer's LRU list, otherwise "blocks with a small number of frequently
//!    accessed items … pollute the block layer".
//! 2. **Promotion** — every access loads the requested item into the item
//!    layer, so temporal reuse is served there and stops perturbing the
//!    block layer.
//!
//! [`IblpVariant`] makes both choices configurable so the claims can be
//! measured (see the ablation tests below and the `ablation` bench): the
//! paper's configuration is [`IblpConfig::paper`], the spoiled ones flip a
//! flag each.

use crate::lru_list::LruList;
use crate::slab::Universe;
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockId, BlockMap, ItemId};

/// Design-choice switches for [`IblpVariant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IblpConfig {
    /// If `true`, an item-layer hit also touches the block's LRU entry —
    /// the pollution mistake §5.1 warns against.
    pub touch_block_on_item_hit: bool,
    /// If `false`, block-layer hits do not promote the item into the item
    /// layer (temporal reuse keeps hammering the block layer).
    pub promote_on_block_hit: bool,
}

impl IblpConfig {
    /// The paper's design (equivalent to [`crate::Iblp`]).
    pub fn paper() -> Self {
        IblpConfig {
            touch_block_on_item_hit: false,
            promote_on_block_hit: true,
        }
    }

    /// Ablation 1: item hits refresh block recency.
    pub fn block_touching() -> Self {
        IblpConfig {
            touch_block_on_item_hit: true,
            ..Self::paper()
        }
    }

    /// Ablation 2: no promotion on block-layer hits.
    pub fn no_promotion() -> Self {
        IblpConfig {
            promote_on_block_hit: false,
            ..Self::paper()
        }
    }
}

/// IBLP with configurable design choices (see [`IblpConfig`]).
#[derive(Clone, Debug)]
pub struct IblpVariant {
    config: IblpConfig,
    item_size: usize,
    block_size_lines: usize,
    block_slots: usize,
    map: BlockMap,
    item_layer: LruList,
    block_layer: LruList,
    /// Block-layer lines, maintained incrementally (see [`crate::Iblp`]).
    block_lines: usize,
}

impl IblpVariant {
    /// Build a variant with layer sizes `(item_size, block_size_lines)`.
    pub fn new(
        item_size: usize,
        block_size_lines: usize,
        map: BlockMap,
        config: IblpConfig,
    ) -> Self {
        assert!(item_size > 0, "item layer must hold at least one item");
        let b = map.max_block_size();
        assert!(block_size_lines >= b, "block layer cannot hold a block");
        let universe = Universe::of(&map);
        IblpVariant {
            config,
            item_size,
            block_size_lines,
            block_slots: block_size_lines / b,
            map,
            item_layer: LruList::with_index(item_size, universe.item_index()),
            block_layer: LruList::with_index(block_size_lines / b, universe.block_index()),
            block_lines: 0,
        }
    }

    fn promote(&mut self, item: ItemId) -> Option<ItemId> {
        self.item_layer.touch(item.0);
        if self.item_layer.len() > self.item_size {
            let victim = ItemId(self.item_layer.evict_lru().expect("nonempty"));
            if !self.block_layer.contains(self.map.block_of(victim).0) {
                return Some(victim);
            }
        }
        None
    }
}

impl GcPolicy for IblpVariant {
    fn name(&self) -> String {
        format!(
            "IBLP-variant(i={},b={},touch={},promote={})",
            self.item_size,
            self.block_size_lines,
            self.config.touch_block_on_item_hit,
            self.config.promote_on_block_hit
        )
    }

    fn capacity(&self) -> usize {
        self.item_size + self.block_size_lines
    }

    fn len(&self) -> usize {
        self.item_layer.len() + self.block_lines
    }

    fn contains(&self, item: ItemId) -> bool {
        self.item_layer.contains(item.0)
            || self
                .map
                .try_block_of(item)
                .is_some_and(|b| self.block_layer.contains(b.0))
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        let block = self.map.block_of(item);
        if self.item_layer.contains(item.0) {
            self.item_layer.touch(item.0);
            if self.config.touch_block_on_item_hit && self.block_layer.contains(block.0) {
                self.block_layer.touch(block.0);
            }
            return AccessKind::Hit;
        }
        if self.block_layer.contains(block.0) {
            self.block_layer.touch(block.0);
            if self.config.promote_on_block_hit {
                let _ = self.promote(item);
            }
            return AccessKind::Hit;
        }
        out.clear();
        for z in self.map.items_of(block) {
            if !self.item_layer.contains(z.0) {
                out.loaded.push(z);
            }
        }
        self.block_layer.touch(block.0);
        self.block_lines += self.map.block_len(block);
        if self.block_layer.len() > self.block_slots {
            let victim = BlockId(self.block_layer.evict_lru().expect("nonempty"));
            self.block_lines -= self.map.block_len(victim);
            for z in self.map.items_of(victim) {
                if !self.item_layer.contains(z.0) {
                    out.evicted.push(z);
                }
            }
        }
        if let Some(victim) = self.promote(item) {
            out.evicted.push(victim);
        }
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.item_layer.clear();
        self.block_layer.clear();
        self.block_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iblp::Iblp;
    use gc_types::Trace;

    fn misses(policy: &mut dyn GcPolicy, trace: &Trace) -> u64 {
        trace.iter().filter(|&i| policy.access(i).is_miss()).count() as u64
    }

    /// The §5.1 pollution trace: one block with a single hot item that is
    /// hammered between accesses to streaming blocks. If item hits refresh
    /// block recency, the hot item's mostly-useless block pins a block slot.
    fn pollution_trace(b: u64, blocks: u64, rounds: u64) -> Trace {
        let mut t = Trace::new();
        for round in 0..rounds {
            // Hot item from block 0 (only item 0 is ever used there).
            for _ in 0..b {
                t.push(ItemId(0));
            }
            // Stream a handful of fully-used blocks (cycled).
            let blk = 1 + (round % blocks);
            for off in 0..b {
                t.push(ItemId(blk * b + off));
            }
        }
        t
    }

    #[test]
    fn paper_config_matches_canonical_iblp() {
        let map = BlockMap::strided(4);
        let trace = pollution_trace(4, 6, 300);
        let mut canonical = Iblp::new(8, 8, map.clone());
        let mut variant = IblpVariant::new(8, 8, map, IblpConfig::paper());
        for item in trace.iter() {
            assert_eq!(
                canonical.access(item).is_hit(),
                variant.access(item).is_hit(),
                "diverged at {item}"
            );
        }
    }

    #[test]
    fn ablation_block_touching_hurts_on_pollution_trace() {
        // With touching, the hot item's block stays MRU in the block layer
        // and the streaming blocks thrash in the remaining slot(s).
        let map = BlockMap::strided(4);
        let trace = pollution_trace(4, 3, 500);
        let mut paper = IblpVariant::new(4, 8, map.clone(), IblpConfig::paper());
        let mut spoiled = IblpVariant::new(4, 8, map, IblpConfig::block_touching());
        let m_paper = misses(&mut paper, &trace);
        let m_spoiled = misses(&mut spoiled, &trace);
        assert!(
            m_paper <= m_spoiled,
            "paper {m_paper} should not lose to block-touching {m_spoiled}"
        );
    }

    #[test]
    fn ablation_no_promotion_loses_block_hit_reuse() {
        // The promotion path matters when an item's first touch is a
        // block-layer hit (a co-load) and the block then leaves the block
        // layer: with promotion the item survives in the item layer; without
        // it the next access misses. Micro-scenario with B = 4, 2 block
        // slots, item layer of 8:
        let map = BlockMap::strided(4);
        let trace = Trace::from_ids([
            1, // miss: loads block 0, promotes item 1
            0, // BLOCK-LAYER hit on a co-load — the config decision point
            4, // miss: block 1
            8, // miss: block 2 — evicts block 0 from the block layer
            0, // promoted ⇒ item-layer hit; unpromoted ⇒ miss
        ]);
        let mut paper = IblpVariant::new(8, 8, map.clone(), IblpConfig::paper());
        let mut spoiled = IblpVariant::new(8, 8, map, IblpConfig::no_promotion());
        assert_eq!(misses(&mut paper, &trace), 3);
        assert_eq!(misses(&mut spoiled, &trace), 4, "lost the reuse of item 0");
    }

    #[test]
    fn promotion_tradeoff_stream_pollution_is_real() {
        // The flip side §5.1 accepts: promoting *every* access lets
        // streaming items churn a tiny item layer. With a hot item whose
        // reuse distance spans a whole streamed block, the paper config
        // pays for its choice — documenting that the design is a trade-off,
        // not a free lunch (the item layer must be sized for the hot set).
        let map = BlockMap::strided(8);
        let mut trace = Trace::new();
        for round in 0..200u64 {
            trace.push(ItemId(0));
            let blk = 1 + (round % 2);
            for off in 0..8 {
                trace.push(ItemId(blk * 8 + off));
            }
        }
        let mut tiny = IblpVariant::new(2, 16, map.clone(), IblpConfig::paper());
        let mut sized = IblpVariant::new(16, 16, map, IblpConfig::paper());
        let m_tiny = misses(&mut tiny, &trace);
        let m_sized = misses(&mut sized, &trace);
        assert!(
            m_sized < m_tiny / 2,
            "sizing the item layer for the hot set must pay off: {m_sized} vs {m_tiny}"
        );
    }

    #[test]
    fn invariants_hold_for_all_configs() {
        for config in [
            IblpConfig::paper(),
            IblpConfig::block_touching(),
            IblpConfig::no_promotion(),
        ] {
            let map = BlockMap::strided(4);
            let mut c = IblpVariant::new(6, 8, map, config);
            let mut x = 11u64;
            for _ in 0..2000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let item = ItemId(x % 48);
                let pre = c.contains(item);
                let r = c.access(item);
                assert_eq!(pre, r.is_hit(), "{config:?}");
                assert!(c.contains(item));
                assert!(c.len() <= c.capacity());
                for e in r.evicted() {
                    assert!(!c.contains(*e), "{config:?}: zombie {e}");
                }
            }
            c.reset();
            assert_eq!(c.len(), 0);
        }
    }
}
