//! Block Caches: policies that increase their granularity to whole blocks.
//!
//! A Block Cache loads **all** items of the requested block and also evicts
//! them together (§2 baseline). It captures spatial locality perfectly but
//! suffers pollution when blocks are sparsely used: Theorem 3 shows that
//! with one hot item per block the cache effectively shrinks by `B×`,
//! making its competitive ratio unbounded unless `k ≥ B·h`.

use crate::lru_list::LruList;
use crate::slab::{KeySet, Universe};
use crate::GcPolicy;
use gc_types::{AccessKind, AccessScratch, BlockId, BlockMap, ItemId};
use std::collections::VecDeque;

fn block_slots(capacity: usize, map: &BlockMap) -> usize {
    assert!(capacity > 0, "cache capacity must be positive");
    let b = map.max_block_size();
    assert!(
        capacity >= b,
        "block cache of capacity {capacity} cannot hold a block of {b} items"
    );
    capacity / b
}

fn evict_block_items(map: &BlockMap, block: BlockId, evicted: &mut Vec<ItemId>) {
    evicted.extend(map.items_of(block));
}

/// LRU-ordered Block Cache: the whole block is the unit of load, hit
/// tracking, and eviction.
#[derive(Clone, Debug)]
pub struct BlockLru {
    capacity: usize,
    slots: usize,
    map: BlockMap,
    list: LruList,
    /// Lines in use: maintained incrementally so `len` is O(1) — the
    /// simulator reads it after every access for `peak_len`.
    lines: usize,
}

impl BlockLru {
    /// A block-granular LRU holding up to `capacity` items, i.e.
    /// `⌊capacity/B⌋` whole blocks.
    pub fn new(capacity: usize, map: BlockMap) -> Self {
        let slots = block_slots(capacity, &map);
        let universe = Universe::of(&map);
        BlockLru {
            capacity,
            slots,
            map,
            list: LruList::with_index(slots, universe.block_index()),
            lines: 0,
        }
    }

    /// The number of whole-block slots (`⌊k/B⌋`).
    pub fn block_slots(&self) -> usize {
        self.slots
    }
}

impl GcPolicy for BlockLru {
    fn name(&self) -> String {
        format!(
            "BlockLRU(k={},B={})",
            self.capacity,
            self.map.max_block_size()
        )
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.lines
    }

    fn contains(&self, item: ItemId) -> bool {
        self.map
            .try_block_of(item)
            .is_some_and(|b| self.list.contains(b.0))
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        let block = self.map.block_of(item);
        if !self.list.touch(block.0) {
            return AccessKind::Hit;
        }
        self.lines += self.map.block_len(block);
        out.clear();
        if self.list.len() > self.slots {
            let victim = self.list.evict_lru().expect("nonempty after insert");
            self.lines -= self.map.block_len(BlockId(victim));
            evict_block_items(&self.map, BlockId(victim), &mut out.evicted);
        }
        out.loaded.extend(self.map.items_of(block));
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.list.clear();
        self.lines = 0;
    }
}

/// FIFO-ordered Block Cache: blocks are evicted in load order; hits do not
/// refresh.
#[derive(Clone, Debug)]
pub struct BlockFifo {
    capacity: usize,
    slots: usize,
    map: BlockMap,
    queue: VecDeque<BlockId>,
    present: KeySet,
    /// Lines in use, maintained incrementally (see [`BlockLru::lines`]).
    lines: usize,
}

impl BlockFifo {
    /// A block-granular FIFO holding up to `capacity` items.
    pub fn new(capacity: usize, map: BlockMap) -> Self {
        let slots = block_slots(capacity, &map);
        let universe = Universe::of(&map);
        BlockFifo {
            capacity,
            slots,
            map,
            queue: VecDeque::with_capacity(slots + 1),
            present: universe.block_set(),
            lines: 0,
        }
    }
}

impl GcPolicy for BlockFifo {
    fn name(&self) -> String {
        format!(
            "BlockFIFO(k={},B={})",
            self.capacity,
            self.map.max_block_size()
        )
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.lines
    }

    fn contains(&self, item: ItemId) -> bool {
        self.map
            .try_block_of(item)
            .is_some_and(|b| self.present.contains(b.0))
    }

    fn access_into(&mut self, item: ItemId, out: &mut AccessScratch) -> AccessKind {
        let block = self.map.block_of(item);
        if self.present.contains(block.0) {
            return AccessKind::Hit;
        }
        out.clear();
        if self.present.len() == self.slots {
            let victim = self.queue.pop_front().expect("queue tracks presence");
            self.present.remove(victim.0);
            self.lines -= self.map.block_len(victim);
            evict_block_items(&self.map, victim, &mut out.evicted);
        }
        self.queue.push_back(block);
        self.present.insert(block.0);
        self.lines += self.map.block_len(block);
        out.loaded.extend(self.map.items_of(block));
        AccessKind::Miss
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.present.clear();
        self.lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_lru_loads_whole_block() {
        let map = BlockMap::strided(4);
        let mut c = BlockLru::new(8, map);
        assert_eq!(c.block_slots(), 2);
        let r = c.access(ItemId(1));
        assert_eq!(
            r.loaded(),
            &[ItemId(0), ItemId(1), ItemId(2), ItemId(3)],
            "whole block loads"
        );
        // Sibling items hit for free: spatial locality.
        assert!(c.access(ItemId(2)).is_hit());
        assert!(c.access(ItemId(0)).is_hit());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn block_lru_evicts_whole_block() {
        let map = BlockMap::strided(2);
        let mut c = BlockLru::new(4, map); // 2 block slots
        c.access(ItemId(0)); // block 0
        c.access(ItemId(2)); // block 1
        c.access(ItemId(0)); // touch block 0
        let r = c.access(ItemId(4)); // block 2 evicts block 1
        assert_eq!(r.evicted(), &[ItemId(2), ItemId(3)]);
        assert!(c.contains(ItemId(1)), "block 0 intact");
        assert!(!c.contains(ItemId(3)));
    }

    #[test]
    fn block_fifo_ignores_recency() {
        let map = BlockMap::strided(2);
        let mut c = BlockFifo::new(4, map);
        c.access(ItemId(0)); // block 0
        c.access(ItemId(2)); // block 1
        c.access(ItemId(1)); // hit block 0 — no refresh
        let r = c.access(ItemId(4)); // block 2 evicts block 0 (first in)
        assert_eq!(r.evicted(), &[ItemId(0), ItemId(1)]);
    }

    #[test]
    fn pollution_shrinks_effective_size() {
        // One hot item per block: a block cache of k=8, B=4 holds only two
        // "useful" items, so a 3-item working set thrashes.
        let map = BlockMap::strided(4);
        let mut c = BlockLru::new(8, map);
        let mut misses = 0;
        for round in 0..30 {
            for blk in 0..3u64 {
                if c.access(ItemId(blk * 4)).is_miss() && round > 0 {
                    misses += 1;
                }
            }
        }
        assert!(misses > 50, "expected thrashing, got {misses} misses");
    }

    #[test]
    fn len_counts_items_not_blocks() {
        let map = BlockMap::strided(4);
        let mut c = BlockLru::new(12, map);
        c.access(ItemId(0));
        c.access(ItemId(4));
        assert_eq!(c.len(), 8);
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn explicit_maps_with_ragged_blocks() {
        let map = BlockMap::from_groups(vec![
            vec![ItemId(10), ItemId(11), ItemId(12)],
            vec![ItemId(20)],
        ])
        .unwrap();
        let mut c = BlockLru::new(3, map);
        assert_eq!(c.block_slots(), 1);
        let r = c.access(ItemId(20));
        assert_eq!(r.loaded(), &[ItemId(20)]);
        assert_eq!(c.len(), 1);
        let r = c.access(ItemId(11));
        assert_eq!(r.loaded().len(), 3);
        assert_eq!(r.evicted(), &[ItemId(20)]);
    }

    #[test]
    #[should_panic(expected = "cannot hold a block")]
    fn rejects_capacity_below_block_size() {
        let _ = BlockLru::new(3, BlockMap::strided(4));
    }

    #[test]
    fn reset_clears_blocks() {
        let map = BlockMap::strided(2);
        let mut c = BlockFifo::new(4, map);
        c.access(ItemId(0));
        c.reset();
        assert_eq!(c.len(), 0);
        assert!(c.access(ItemId(0)).is_miss());
    }

    #[test]
    fn singleton_blocks_degenerate_to_item_cache() {
        let mut blk = BlockLru::new(2, BlockMap::singleton());
        let mut itm = crate::item::ItemLru::new(2);
        for id in [1u64, 2, 1, 3, 2, 1, 3, 3, 4] {
            let a = blk.access(ItemId(id));
            let b = itm.access(ItemId(id));
            assert_eq!(a.is_hit(), b.is_hit(), "diverged at {id}");
        }
    }
}
