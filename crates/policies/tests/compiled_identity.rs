//! Compiled × uncompiled bit-identity across the full policy roster.
//!
//! Each policy replays the same request stream twice: once in the sparse
//! key space (hash-backed slab state), once over the dense-ID compiled
//! trace with the policy built against the compiled map (Vec-backed slab
//! state). After decoding dense ids back to the source keys, every access
//! must agree on hit/miss and on the exact loaded and evicted sequences —
//! the compiled path is an optimization, never a behavior change.

use gc_policies::{GcPolicy, PolicyKind};
use gc_types::{AccessScratch, BlockMap, CompiledTrace, ItemId, Trace};

/// Every `PolicyKind` variant, including the ones outside the rosters.
fn full_roster() -> Vec<PolicyKind> {
    let mut roster = PolicyKind::extended_roster(7);
    roster.extend([
        PolicyKind::ItemRandom { seed: 7 },
        PolicyKind::BlockFifo,
        PolicyKind::Iblp { item_lines: 24 },
        PolicyKind::PartialGcm { seed: 7, coload: 2 },
    ]);
    assert_eq!(roster.len(), 18, "roster must cover every PolicyKind");
    roster
}

/// Zipf-ish stream over a scattered sparse key space: a hot set plus a
/// long tail, ids far apart so the dense rename actually renames.
fn scattered_trace(len: usize, seed: u64, pick: impl Fn(u64) -> u64) -> Trace {
    let mut t = Trace::new();
    let mut x = seed | 1;
    for _ in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        t.push(ItemId(pick(x >> 33)));
    }
    t
}

/// Replay `trace` sparse and compiled, asserting bit-identical behavior
/// per access (with a mid-stream `reset` to exercise generation bumps).
fn assert_bit_identical(kind: &PolicyKind, capacity: usize, trace: &Trace, map: &BlockMap) {
    let ct = CompiledTrace::compile(trace, map).expect("trace must compile");
    let mut sparse = kind.build(capacity, map);
    let mut dense = kind.build(capacity, ct.map());
    let mut s_out = AccessScratch::new();
    let mut d_out = AccessScratch::new();
    let half = trace.len() / 2;
    for (step, (item, access)) in trace.iter().zip(ct.accesses()).enumerate() {
        if step == half {
            sparse.reset();
            dense.reset();
        }
        let s_kind = sparse.access_into(item, &mut s_out);
        let d_kind = dense.access_into(ItemId(u64::from(access.item)), &mut d_out);
        assert_eq!(
            s_kind, d_kind,
            "{kind}: hit/miss diverged at step {step} ({item})"
        );
        if s_kind.is_miss() {
            let decode =
                |v: &[ItemId]| -> Vec<ItemId> { v.iter().map(|&z| ct.decode_item(z)).collect() };
            assert_eq!(
                s_out.loaded,
                decode(&d_out.loaded),
                "{kind}: loads diverged at step {step} ({item})"
            );
            assert_eq!(
                s_out.evicted,
                decode(&d_out.evicted),
                "{kind}: evictions diverged at step {step} ({item})"
            );
        }
        assert_eq!(
            sparse.len(),
            dense.len(),
            "{kind}: occupancy diverged at step {step}"
        );
    }
}

#[test]
fn strided_map_full_roster_is_bit_identical() {
    let map = BlockMap::strided(8);
    let trace = scattered_trace(4000, 0x9e37, |r| {
        if r % 3 != 0 {
            (r % 12) * 1_000 + 5
        } else {
            (r % 700) * 911
        }
    });
    for kind in full_roster() {
        assert_bit_identical(&kind, 64, &trace, &map);
    }
}

#[test]
fn explicit_ragged_map_full_roster_is_bit_identical() {
    // Ragged explicit blocks (1..=5 items) over scattered ids, with
    // deliberately non-sorted group order inside each block.
    let groups: Vec<Vec<ItemId>> = (0..40u64)
        .map(|g| {
            let size = 1 + (g % 5);
            (0..size)
                .rev()
                .map(|j| ItemId(g * 10_007 + j * 13))
                .collect()
        })
        .collect();
    let ids: Vec<u64> = groups.iter().flatten().map(|z| z.0).collect();
    let map = BlockMap::from_groups(groups).unwrap();
    let trace = scattered_trace(3000, 0xfeed, |r| {
        if r % 2 == 0 {
            ids[(r % 9) as usize]
        } else {
            ids[(r % ids.len() as u64) as usize]
        }
    });
    for kind in full_roster() {
        assert_bit_identical(&kind, 32, &trace, &map);
    }
}

#[test]
fn singleton_map_roster_is_bit_identical() {
    let map = BlockMap::singleton();
    let trace = scattered_trace(2000, 0xabcd, |r| (r % 300) * 7919);
    for kind in full_roster() {
        assert_bit_identical(&kind, 24, &trace, &map);
    }
}
